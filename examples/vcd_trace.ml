(* Waveform tracing (paper §3.1): record the pin-level bus wires of a
   small transfer sequence and print the VCD document that any standard
   wave viewer ($dumpvars initial values included) can load.

   Also demonstrates bounded simulation: the same system is advanced in
   fixed time slices with [run ~until], the co-simulation equivalent of
   a debugger's "run for N cycles" — the kernel clock lands exactly on
   each bound even while future events stay queued.

     dune exec examples/vcd_trace.exe                                   *)

module K = Codesign_sim.Kernel
module S = Codesign_sim.Signal
module Vcd = Codesign_sim.Vcd
module M = Codesign_bus.Memory_map
module Bus = Codesign_bus.Bus

let () =
  let k = K.create () in
  let map = M.create [ M.ram ~name:"ram" ~base:0 ~size:32 ] in
  let bus = Bus.Pin.create k map in
  let vcd = Vcd.create k in
  Vcd.watch vcd ~width:1 (Bus.Pin.req_wire bus);
  Vcd.watch vcd ~width:1 (Bus.Pin.ack_wire bus);
  Vcd.watch vcd ~width:20 (Bus.Pin.addr_wire bus);
  K.spawn ~name:"master" k (fun () ->
      for i = 0 to 3 do
        Bus.Pin.write bus (4 * i) (100 + i);
        K.wait 10
      done;
      for i = 0 to 3 do
        ignore (Bus.Pin.read bus (4 * i));
        K.wait 5
      done);

  (* advance in bounded slices; watchers (daemon processes) never trip
     deadlock detection, and the clock lands exactly on each bound even
     when the remaining work (the idle bus slave) stays queued *)
  for i = 1 to 5 do
    let t = 40 * i in
    let stats = K.run ~until:t k in
    Printf.printf "after run ~until:%-4d  clock=%-4d  events=%d\n" t
      stats.K.end_time stats.K.events;
    assert (stats.K.end_time = t)
  done;

  print_newline ();
  print_string (Vcd.dump vcd)
