(* Tests for the codesign_ir library: graphs, task graphs, CDFGs,
   behaviours and process networks. *)

open Codesign_ir
module G = Graph_algo
module B = Behavior

let check = Alcotest.check
let fail = Alcotest.fail

(* ------------------------------------------------------------------ *)
(* Graph_algo                                                          *)
(* ------------------------------------------------------------------ *)

let diamond () = G.create ~n:4 ~edges:[ (0, 1); (0, 2); (1, 3); (2, 3) ]

let test_graph_basic () =
  let g = diamond () in
  check Alcotest.int "n" 4 (G.n g);
  check Alcotest.int "edges" 4 (G.edge_count g);
  check (Alcotest.list Alcotest.int) "succ 0" [ 1; 2 ] (G.succ g 0);
  check (Alcotest.list Alcotest.int) "pred 3" [ 1; 2 ] (G.pred g 3);
  check Alcotest.bool "has_edge" true (G.has_edge g 0 1);
  check Alcotest.bool "no edge" false (G.has_edge g 1 0);
  check Alcotest.int "out_degree" 2 (G.out_degree g 0);
  check Alcotest.int "in_degree" 0 (G.in_degree g 0)

let test_graph_invalid () =
  (try
     ignore (G.create ~n:2 ~edges:[ (0, 2) ]);
     fail "expected Invalid_argument"
   with Invalid_argument _ -> ());
  try
    ignore (G.create ~n:(-1) ~edges:[]);
    fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_topo_sort () =
  let g = diamond () in
  (match G.topo_sort g with
  | Some [ 0; 1; 2; 3 ] -> ()
  | Some o ->
      fail
        ("unexpected order: " ^ String.concat "," (List.map string_of_int o))
  | None -> fail "expected a DAG");
  let cyc = G.create ~n:3 ~edges:[ (0, 1); (1, 2); (2, 0) ] in
  check Alcotest.bool "cyclic" false (G.is_dag cyc);
  check Alcotest.bool "dag" true (G.is_dag g);
  (* self loop is a cycle *)
  let self = G.create ~n:1 ~edges:[ (0, 0) ] in
  check Alcotest.bool "self-loop cyclic" false (G.is_dag self)

let test_topo_deterministic () =
  (* A wide antichain must come out in ascending id order. *)
  let g = G.create ~n:5 ~edges:[] in
  match G.topo_sort g with
  | Some o -> check (Alcotest.list Alcotest.int) "order" [ 0; 1; 2; 3; 4 ] o
  | None -> fail "dag"

let test_sources_sinks () =
  let g = diamond () in
  check (Alcotest.list Alcotest.int) "sources" [ 0 ] (G.sources g);
  check (Alcotest.list Alcotest.int) "sinks" [ 3 ] (G.sinks g)

let test_longest_path () =
  let g = diamond () in
  let w = [| 1; 5; 2; 1 |] in
  let dist = G.longest_path g ~weight:(fun i -> w.(i)) in
  check Alcotest.int "dist 0" 1 dist.(0);
  check Alcotest.int "dist 1" 6 dist.(1);
  check Alcotest.int "dist 2" 3 dist.(2);
  check Alcotest.int "dist 3" 7 dist.(3)

let test_critical_path () =
  let g = diamond () in
  let w = [| 1; 5; 2; 1 |] in
  let path, total = G.critical_path g ~weight:(fun i -> w.(i)) in
  check Alcotest.int "total" 7 total;
  check (Alcotest.list Alcotest.int) "path" [ 0; 1; 3 ] path

let test_critical_path_cyclic_raises () =
  let cyc = G.create ~n:2 ~edges:[ (0, 1); (1, 0) ] in
  try
    ignore (G.longest_path cyc ~weight:(fun _ -> 1));
    fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_reachable () =
  let g = diamond () in
  let r = G.reachable g 1 in
  check Alcotest.bool "1->1" true r.(1);
  check Alcotest.bool "1->3" true r.(3);
  check Alcotest.bool "1->0" false r.(0);
  check Alcotest.bool "1->2" false r.(2);
  let a = G.ancestors g 3 in
  check Alcotest.bool "anc all" true (a.(0) && a.(1) && a.(2) && a.(3))

let test_components () =
  let g = G.create ~n:5 ~edges:[ (0, 1); (3, 4) ] in
  check
    (Alcotest.list (Alcotest.list Alcotest.int))
    "components"
    [ [ 0; 1 ]; [ 2 ]; [ 3; 4 ] ]
    (G.weakly_connected_components g)

let test_transitive_closure () =
  let g = diamond () in
  let c = G.transitive_closure g in
  check Alcotest.bool "0->3" true c.(0).(3);
  check Alcotest.bool "3->0" false c.(3).(0);
  check Alcotest.bool "diag" true c.(2).(2)

let test_depth () =
  let g = diamond () in
  let d = G.depth g in
  check Alcotest.int "d0" 0 d.(0);
  check Alcotest.int "d1" 1 d.(1);
  check Alcotest.int "d3" 2 d.(3)

let test_all_pairs () =
  let g = diamond () in
  let d = G.all_pairs_longest g ~weight:(fun _ -> 1) in
  check Alcotest.int "0->3" 3 d.(0).(3);
  check Alcotest.int "0->0" 1 d.(0).(0);
  check Alcotest.bool "3->0 none" true (d.(3).(0) = min_int)

let test_dot () =
  let s = G.dot ~name:"d" (diamond ()) in
  check Alcotest.bool "digraph" true
    (String.length s > 10 && String.sub s 0 9 = "digraph d")

(* qcheck: topological order places every edge forward. *)
let random_dag_gen =
  QCheck.Gen.(
    sized_size (int_range 1 30) (fun n ->
        let* density = int_range 0 3 in
        let edges = ref [] in
        let* seeds = list_repeat (n * density) (pair (int_bound 1000) (int_bound 1000)) in
        List.iter
          (fun (a, b) ->
            let u = a mod n and v = b mod n in
            if u < v then edges := (u, v) :: !edges)
          seeds;
        return (n, !edges)))

let arb_dag =
  QCheck.make
    ~print:(fun (n, es) ->
      Printf.sprintf "n=%d edges=[%s]" n
        (String.concat ";"
           (List.map (fun (u, v) -> Printf.sprintf "(%d,%d)" u v) es)))
    random_dag_gen

let prop_topo_respects_edges =
  QCheck.Test.make ~name:"topo order places edges forward" ~count:200 arb_dag
    (fun (n, edges) ->
      let g = G.create ~n ~edges in
      match G.topo_sort g with
      | None -> false (* by construction u < v, always a DAG *)
      | Some order ->
          let pos = Array.make n 0 in
          List.iteri (fun i u -> pos.(u) <- i) order;
          List.for_all (fun (u, v) -> pos.(u) < pos.(v)) edges)

let prop_longest_path_ge_weight =
  QCheck.Test.make ~name:"longest path >= node weight" ~count:200 arb_dag
    (fun (n, edges) ->
      let g = G.create ~n ~edges in
      let dist = G.longest_path g ~weight:(fun i -> (i mod 7) + 1) in
      Array.to_list dist
      |> List.mapi (fun i d -> d >= (i mod 7) + 1)
      |> List.for_all Fun.id)

let prop_critical_path_is_valid_path =
  QCheck.Test.make ~name:"critical path is a real path with stated weight"
    ~count:200 arb_dag (fun (n, edges) ->
      let g = G.create ~n ~edges in
      let w i = (i mod 5) + 1 in
      let path, total = G.critical_path g ~weight:w in
      let rec ok = function
        | [] -> true
        | [ _ ] -> true
        | u :: (v :: _ as rest) -> G.has_edge g u v && ok rest
      in
      ok path && total = List.fold_left (fun a u -> a + w u) 0 path)

(* ------------------------------------------------------------------ *)
(* Task_graph                                                          *)
(* ------------------------------------------------------------------ *)

module T = Task_graph

let mk_task id name sw hw area =
  T.task ~id ~name ~sw_cycles:sw ~hw_cycles:hw ~hw_area:area ()

let small_tg () =
  T.make ~name:"small" ~deadline:100
    [ mk_task 0 "a" 10 2 50; mk_task 1 "b" 30 5 80; mk_task 2 "c" 20 4 60 ]
    [ { T.src = 0; dst = 1; words = 4 }; { T.src = 1; dst = 2; words = 8 } ]

let test_tg_basic () =
  let g = small_tg () in
  check Alcotest.int "n" 3 (T.n_tasks g);
  check Alcotest.int "total sw" 60 (T.total_sw_cycles g);
  check Alcotest.int "total area" 190 (T.total_hw_area g);
  check Alcotest.int "cp" 60 (T.sw_critical_path g);
  check Alcotest.int "comm 0->1" 4 (T.comm_words g 0 1);
  check Alcotest.int "comm 1->0" 0 (T.comm_words g 1 0);
  check (Alcotest.list Alcotest.int) "topo" [ 0; 1; 2 ] (T.topo_order g)

let test_tg_validation () =
  let bad_ids () =
    T.make [ mk_task 1 "a" 1 1 1 ] [] |> ignore
  in
  (try bad_ids (); fail "ids" with Invalid_argument _ -> ());
  (try
     T.make
       [ mk_task 0 "a" 1 1 1 ]
       [ { T.src = 0; dst = 0; words = 1 } ]
     |> ignore;
     fail "self-loop"
   with Invalid_argument _ -> ());
  (try
     T.make
       [ mk_task 0 "a" 1 1 1; mk_task 1 "b" 1 1 1 ]
       [ { T.src = 0; dst = 1; words = -3 } ]
     |> ignore;
     fail "negative words"
   with Invalid_argument _ -> ());
  try
    T.make
      [ mk_task 0 "a" 1 1 1; mk_task 1 "b" 1 1 1 ]
      [ { T.src = 0; dst = 1; words = 1 }; { T.src = 1; dst = 0; words = 1 } ]
    |> ignore;
    fail "cycle"
  with Invalid_argument _ -> ()

let test_tg_defaults () =
  let t = mk_task 0 "x" 10 1 1 in
  check Alcotest.int "sw_bytes default" 20 t.T.sw_bytes;
  check Alcotest.bool "modifiable default" false t.T.modifiable

let test_tg_scale_deadline () =
  let g = small_tg () in
  let g2 = T.scale_deadline g 1.5 in
  check Alcotest.int "deadline" 90 g2.T.deadline

let test_tg_edges_views () =
  let g = small_tg () in
  check Alcotest.int "in_edges 1" 1 (List.length (T.in_edges g 1));
  check Alcotest.int "out_edges 1" 1 (List.length (T.out_edges g 1));
  check (Alcotest.list Alcotest.int) "succ 0" [ 1 ] (T.succ g 0);
  check (Alcotest.list Alcotest.int) "pred 2" [ 1 ] (T.pred g 2)

(* ------------------------------------------------------------------ *)
(* Cdfg                                                                *)
(* ------------------------------------------------------------------ *)

module C = Cdfg

let mac_block () =
  (* t = a*b + c *)
  C.block_make "bb0"
    [
      { C.id = 0; opcode = C.Read "a"; args = [] };
      { C.id = 1; opcode = C.Read "b"; args = [] };
      { C.id = 2; opcode = C.Mul; args = [ 0; 1 ] };
      { C.id = 3; opcode = C.Read "c"; args = [] };
      { C.id = 4; opcode = C.Add; args = [ 2; 3 ] };
      { C.id = 5; opcode = C.Write "t"; args = [ 4 ] };
    ]

let test_cdfg_basic () =
  let g = C.make ~name:"mac" [ mac_block () ] in
  check Alcotest.int "total ops" 6 (C.total_ops g);
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "mix"
    [ ("add", 1); ("mul", 1) ]
    (C.op_mix g);
  check Alcotest.int "latency" 4 (C.block_latency (mac_block ()))

let test_cdfg_latency_weighted () =
  let d = function C.Mul -> 4 | _ -> 1 in
  check Alcotest.int "weighted latency" 7
    (C.block_latency ~op_delay:d (mac_block ()))

let test_cdfg_validation () =
  (try
     C.make [ C.block_make "b" [ { C.id = 0; opcode = C.Add; args = [] } ] ]
     |> ignore;
     fail "arity"
   with Invalid_argument _ -> ());
  (try
     C.make
       [ C.block_make "b" [ { C.id = 0; opcode = C.Neg; args = [ 0 ] } ] ]
     |> ignore;
     fail "forward ref"
   with Invalid_argument _ -> ());
  try
    C.make [ C.block_make "b" []; C.block_make "b" [] ] |> ignore;
    fail "dup labels"
  with Invalid_argument _ -> ()

let test_cdfg_trip_weighting () =
  let b = { (mac_block ()) with C.trip = 10 } in
  let g = C.make [ b ] in
  check Alcotest.int "dyn ops" 60 (C.total_ops g);
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "mix x10"
    [ ("add", 10); ("mul", 10) ]
    (C.op_mix g)

(* ------------------------------------------------------------------ *)
(* Behavior                                                            *)
(* ------------------------------------------------------------------ *)

let run_res p binds = B.run p binds

let test_behavior_arith () =
  let p =
    {
      B.name = "arith";
      params = [ "a"; "b" ];
      arrays = [];
      results = [ "x"; "y"; "z" ];
      body =
        [
          B.Assign ("x", B.Bin (B.Add, B.Var "a", B.Var "b"));
          B.Assign ("y", B.Bin (B.Mul, B.Var "a", B.Var "b"));
          B.Assign
            ("z", B.Bin (B.Div, B.Var "a", B.Int 0) (* div by 0 -> 0 *));
        ];
    }
  in
  let r = run_res p [ ("a", 7); ("b", 5) ] in
  check Alcotest.int "x" 12 (List.assoc "x" r);
  check Alcotest.int "y" 35 (List.assoc "y" r);
  check Alcotest.int "z" 0 (List.assoc "z" r)

let test_behavior_control () =
  (* sum of squares 0..n-1 via for; factorial via while *)
  let p =
    {
      B.name = "ctl";
      params = [ "n" ];
      arrays = [];
      results = [ "sum"; "fact" ];
      body =
        [
          B.Assign ("sum", B.Int 0);
          B.For
            ( "i",
              B.Int 0,
              B.Var "n",
              [
                B.Assign
                  ( "sum",
                    B.Bin
                      (B.Add, B.Var "sum", B.Bin (B.Mul, B.Var "i", B.Var "i"))
                  );
              ] );
          B.Assign ("fact", B.Int 1);
          B.Assign ("k", B.Var "n");
          B.While
            ( B.Bin (B.Lt, B.Int 0, B.Var "k"),
              [
                B.Assign ("fact", B.Bin (B.Mul, B.Var "fact", B.Var "k"));
                B.Assign ("k", B.Bin (B.Sub, B.Var "k", B.Int 1));
              ],
              5 );
        ];
    }
  in
  let r = run_res p [ ("n", 5) ] in
  check Alcotest.int "sum" 30 (List.assoc "sum" r);
  check Alcotest.int "fact" 120 (List.assoc "fact" r)

let test_behavior_arrays () =
  let p =
    {
      B.name = "arr";
      params = [];
      arrays = [ ("t", 4) ];
      results = [ "s" ];
      body =
        [
          B.For
            ( "i",
              B.Int 0,
              B.Int 4,
              [ B.Store ("t", B.Var "i", B.Bin (B.Mul, B.Var "i", B.Int 3)) ]
            );
          B.Assign ("s", B.Int 0);
          B.For
            ( "i",
              B.Int 0,
              B.Int 4,
              [
                B.Assign
                  ("s", B.Bin (B.Add, B.Var "s", B.Idx ("t", B.Var "i")));
              ] );
        ];
    }
  in
  check Alcotest.int "s" 18 (List.assoc "s" (run_res p []))

let test_behavior_array_clamp () =
  let p =
    {
      B.name = "clamp";
      params = [];
      arrays = [ ("t", 2) ];
      results = [ "v" ];
      body =
        [
          B.Store ("t", B.Int 99, B.Int 42);
          (* clamps to index 1 *)
          B.Assign ("v", B.Idx ("t", B.Int 1));
        ];
    }
  in
  check Alcotest.int "clamped store" 42 (List.assoc "v" (run_res p []))

let test_behavior_io () =
  let io, out = B.collecting_io () in
  let p =
    {
      B.name = "io";
      params = [];
      arrays = [];
      results = [];
      body =
        [
          B.PortIn ("x", 3);
          B.PortOut (1, B.Bin (B.Add, B.Var "x", B.Int 1));
          B.PortOut (2, B.Int 9);
        ];
    }
  in
  let io = { io with B.port_in = (fun p -> p * 10) } in
  ignore (B.run ~io p []);
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "outs"
    [ (1, 31); (2, 9) ]
    (List.rev !out)

let test_behavior_fuel () =
  let p =
    {
      B.name = "loop";
      params = [];
      arrays = [];
      results = [];
      body = [ B.While (B.Int 1, [ B.Assign ("x", B.Int 0) ], 1) ];
    }
  in
  try
    ignore (B.run ~fuel:1000 p []);
    fail "expected fuel exhaustion"
  with Invalid_argument _ -> ()

let test_behavior_array_binding () =
  let p =
    {
      B.name = "bind";
      params = [];
      arrays = [ ("t", 3) ];
      results = [ "v" ];
      body = [ B.Assign ("v", B.Idx ("t", B.Int 2)) ];
    }
  in
  check Alcotest.int "preloaded" 7 (List.assoc "v" (B.run p [ ("t[2]", 7) ]))

let test_elaborate_structure () =
  let p =
    {
      B.name = "elab";
      params = [ "n" ];
      arrays = [];
      results = [ "s" ];
      body =
        [
          B.Assign ("s", B.Int 0);
          B.For
            ( "i",
              B.Int 0,
              B.Int 10,
              [ B.Assign ("s", B.Bin (B.Add, B.Var "s", B.Var "i")) ] );
        ];
    }
  in
  let g = B.elaborate p in
  (* loop body block must carry trip = 10 *)
  let body_block =
    List.find
      (fun b -> b.C.trip = 10)
      g.C.blocks
  in
  check Alcotest.bool "body has add" true
    (List.exists (fun o -> o.C.opcode = C.Add) body_block.C.ops);
  (* op mix is trip-weighted *)
  check Alcotest.int "adds" 10 (List.assoc "add" (C.op_mix g))

let test_elaborate_if_blocks () =
  let p =
    {
      B.name = "br";
      params = [ "c" ];
      arrays = [];
      results = [];
      body =
        [
          B.If
            ( B.Var "c",
              [ B.Assign ("x", B.Int 1) ],
              [ B.Assign ("x", B.Int 2) ] );
        ];
    }
  in
  let g = B.elaborate p in
  check Alcotest.bool ">= 3 blocks" true (List.length g.C.blocks >= 3);
  check Alcotest.bool "has ctrl edges" true (List.length g.C.ctrl >= 2)

let test_vars_of () =
  let p =
    {
      B.name = "v";
      params = [ "a" ];
      arrays = [];
      results = [];
      body =
        [
          B.Assign ("b", B.Var "a");
          B.If (B.Var "b", [ B.Assign ("c", B.Int 1) ], []);
        ];
    }
  in
  check (Alcotest.list Alcotest.string) "vars" [ "a"; "b"; "c" ] (B.vars_of p)

let test_pp_behavior () =
  let p =
    {
      B.name = "pp";
      params = [ "a" ];
      arrays = [];
      results = [];
      body = [ B.Assign ("x", B.Bin (B.Add, B.Var "a", B.Int 1)) ];
    }
  in
  let s = Format.asprintf "%a" B.pp p in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "mentions proc" true (contains s "proc pp");
  check Alcotest.bool "mentions stmt" true (contains s "x = (a + 1);")

(* Differential property: elaborated CDFG op mix counts never negative and
   static ops >= number of assignments. *)
let prop_elaborate_wellformed =
  QCheck.Test.make ~name:"elaborate produces a valid CDFG" ~count:100
    QCheck.(int_range 0 6)
    (fun k ->
      let body =
        List.init k (fun i ->
            B.Assign (Printf.sprintf "v%d" i, B.Bin (B.Add, B.Int i, B.Int 1)))
      in
      let p =
        { B.name = "gen"; params = []; arrays = []; results = []; body }
      in
      let g = B.elaborate p in
      (* Cdfg.make validates internally; just sanity-check op counts *)
      C.total_ops g >= k)

(* ------------------------------------------------------------------ *)
(* Process_network                                                     *)
(* ------------------------------------------------------------------ *)

module Pn = Process_network

let producer =
  {
    B.name = "producer";
    params = [];
    arrays = [];
    results = [];
    body =
      [ B.For ("i", B.Int 0, B.Int 4, [ B.Send ("data", B.Var "i") ]) ];
  }

let consumer =
  {
    B.name = "consumer";
    params = [];
    arrays = [];
    results = [ "acc" ];
    body =
      [
        B.Assign ("acc", B.Int 0);
        B.For
          ( "i",
            B.Int 0,
            B.Int 4,
            [
              B.Recv ("v", "data");
              B.Assign ("acc", B.Bin (B.Add, B.Var "acc", B.Var "v"));
            ] );
      ];
  }

let net () =
  Pn.make ~name:"pc"
    [ (producer, Pn.Sw); (consumer, Pn.Hw) ]
    [ { Pn.cname = "data"; src = "producer"; dst = "consumer"; depth = 2; latency = 0 } ]

let test_pn_basic () =
  let n = net () in
  check Alcotest.int "procs" 2 (List.length n.Pn.procs);
  check Alcotest.int "cut" 1 (List.length (Pn.cut_channels n));
  let n2 = Pn.remap n [ ("consumer", Pn.Sw) ] in
  check Alcotest.int "cut after remap" 0 (List.length (Pn.cut_channels n2));
  check Alcotest.int "sw procs" 2 (List.length (Pn.sw_procs n2))

let test_pn_validation () =
  (try
     Pn.make
       [ (producer, Pn.Sw) ]
       [ { Pn.cname = "data"; src = "producer"; dst = "nobody"; depth = 0; latency = 0 } ]
     |> ignore;
     fail "unknown endpoint"
   with Invalid_argument _ -> ());
  (try
     Pn.make [ (producer, Pn.Sw); (consumer, Pn.Hw) ] [] |> ignore;
     fail "undeclared channel"
   with Invalid_argument _ -> ());
  try
    Pn.make
      [ (producer, Pn.Sw); (consumer, Pn.Hw) ]
      [ { Pn.cname = "data"; src = "consumer"; dst = "producer"; depth = 0; latency = 0 } ]
    |> ignore;
    fail "wrong direction"
  with Invalid_argument _ -> ()

let test_pn_comm_graph () =
  let n = net () in
  let g, names = Pn.comm_graph n in
  check Alcotest.int "nodes" 2 (G.n g);
  check Alcotest.int "edges" 1 (G.edge_count g);
  check Alcotest.string "name0" "producer" names.(0)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "codesign_ir"
    [
      ( "graph_algo",
        [
          Alcotest.test_case "basic accessors" `Quick test_graph_basic;
          Alcotest.test_case "invalid input" `Quick test_graph_invalid;
          Alcotest.test_case "topo sort" `Quick test_topo_sort;
          Alcotest.test_case "topo deterministic" `Quick
            test_topo_deterministic;
          Alcotest.test_case "sources/sinks" `Quick test_sources_sinks;
          Alcotest.test_case "longest path" `Quick test_longest_path;
          Alcotest.test_case "critical path" `Quick test_critical_path;
          Alcotest.test_case "cyclic raises" `Quick
            test_critical_path_cyclic_raises;
          Alcotest.test_case "reachable" `Quick test_reachable;
          Alcotest.test_case "components" `Quick test_components;
          Alcotest.test_case "closure" `Quick test_transitive_closure;
          Alcotest.test_case "depth" `Quick test_depth;
          Alcotest.test_case "all pairs" `Quick test_all_pairs;
          Alcotest.test_case "dot output" `Quick test_dot;
          QCheck_alcotest.to_alcotest prop_topo_respects_edges;
          QCheck_alcotest.to_alcotest prop_longest_path_ge_weight;
          QCheck_alcotest.to_alcotest prop_critical_path_is_valid_path;
        ] );
      ( "task_graph",
        [
          Alcotest.test_case "basic" `Quick test_tg_basic;
          Alcotest.test_case "validation" `Quick test_tg_validation;
          Alcotest.test_case "defaults" `Quick test_tg_defaults;
          Alcotest.test_case "scale deadline" `Quick test_tg_scale_deadline;
          Alcotest.test_case "edge views" `Quick test_tg_edges_views;
        ] );
      ( "cdfg",
        [
          Alcotest.test_case "basic" `Quick test_cdfg_basic;
          Alcotest.test_case "weighted latency" `Quick
            test_cdfg_latency_weighted;
          Alcotest.test_case "validation" `Quick test_cdfg_validation;
          Alcotest.test_case "trip weighting" `Quick test_cdfg_trip_weighting;
        ] );
      ( "behavior",
        [
          Alcotest.test_case "arithmetic" `Quick test_behavior_arith;
          Alcotest.test_case "control flow" `Quick test_behavior_control;
          Alcotest.test_case "arrays" `Quick test_behavior_arrays;
          Alcotest.test_case "array clamping" `Quick test_behavior_array_clamp;
          Alcotest.test_case "port io" `Quick test_behavior_io;
          Alcotest.test_case "fuel bound" `Quick test_behavior_fuel;
          Alcotest.test_case "array binding" `Quick
            test_behavior_array_binding;
          Alcotest.test_case "elaborate loop trips" `Quick
            test_elaborate_structure;
          Alcotest.test_case "elaborate branches" `Quick
            test_elaborate_if_blocks;
          Alcotest.test_case "vars_of" `Quick test_vars_of;
          Alcotest.test_case "pretty print" `Quick test_pp_behavior;
          QCheck_alcotest.to_alcotest prop_elaborate_wellformed;
        ] );
      ( "process_network",
        [
          Alcotest.test_case "basic" `Quick test_pn_basic;
          Alcotest.test_case "validation" `Quick test_pn_validation;
          Alcotest.test_case "comm graph" `Quick test_pn_comm_graph;
        ] );
    ]
