(* Tests for the extension modules: binary instruction encoding
   (property-based roundtrips), textual assembly roundtrips on random
   programs, and profile-driven hotspot analysis. *)

open Codesign_isa
module B = Codesign_ir.Behavior
module Kernels = Codesign_workloads.Kernels
module Hotspot = Codesign.Hotspot

let check = Alcotest.check
let fail = Alcotest.fail

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

let sample_instrs : int Isa.instr list =
  [
    Isa.Alu (Isa.Add, 1, 2, 3);
    Isa.Alu (Isa.Seq, 31, 0, 15);
    Isa.Alui (Isa.Shr, 4, 5, 9);
    Isa.Alui (Isa.Mul, 4, 5, -700);
    Isa.Li (7, 42);
    Isa.Li (7, 0xEDB88320);
    Isa.Li (7, -123456789);
    Isa.Lw (2, 3, 65536);
    Isa.Sw (2, 3, -8);
    Isa.B (Isa.Lt, 9, 10, 2047);
    Isa.B (Isa.Ge, 9, 10, 3);
    Isa.J 100000;
    Isa.Jal (31, 5);
    Isa.Jr 31;
    Isa.In (1, 99);
    Isa.Out (1300, 2);
    Isa.Custom (3, 8, 9, 10);
    Isa.Ei;
    Isa.Di;
    Isa.Rti;
    Isa.Nop;
    Isa.Halt;
  ]

let test_encode_roundtrip_samples () =
  List.iter
    (fun i ->
      let words = Encoding.encode i in
      let i', rest = Encoding.decode words in
      check Alcotest.bool
        (Format.asprintf "roundtrip %a" (Isa.pp ~target:string_of_int) i)
        true
        (i = i' && rest = []))
    sample_instrs

let test_encode_word_counts () =
  check Alcotest.int "small imm 1 word" 1
    (Encoding.encoded_words (Isa.Li (1, 1000)));
  check Alcotest.int "big imm 2 words" 2
    (Encoding.encoded_words (Isa.Li (1, 70000)));
  check Alcotest.int "negative small" 1
    (Encoding.encoded_words (Isa.Li (1, -1024)));
  check Alcotest.int "negative big" 2
    (Encoding.encoded_words (Isa.Li (1, -1025)));
  check Alcotest.int "alu always 1" 1
    (Encoding.encoded_words (Isa.Alu (Isa.Mul, 1, 2, 3)))

let test_encode_program () =
  let p = Array.of_list sample_instrs in
  let words = Encoding.encode_program p in
  let p' = Encoding.decode_program words in
  check Alcotest.bool "program roundtrip" true (p = p');
  check Alcotest.int "program bytes" (4 * Array.length words)
    (Encoding.program_bytes p)

let test_encode_errors () =
  (try
     ignore (Encoding.encode (Isa.Li (1, 1 lsl 40)));
     fail "imm out of range"
   with Invalid_argument _ -> ());
  (try
     ignore (Encoding.decode []);
     fail "empty stream"
   with Invalid_argument _ -> ());
  try
    (* extended header without its second word *)
    let header = List.hd (Encoding.encode (Isa.Li (1, 1 lsl 20))) in
    ignore (Encoding.decode [ header ]);
    fail "truncated pair"
  with Invalid_argument _ -> ()

let gen_instr : int Isa.instr QCheck.Gen.t =
  let open QCheck.Gen in
  let reg = int_bound 31 in
  let imm = oneof [ int_range (-1024) 1023; int_range (-100000) 100000 ] in
  let aluop =
    oneofl
      [ Isa.Add; Isa.Sub; Isa.Mul; Isa.Div; Isa.Rem; Isa.And; Isa.Or;
        Isa.Xor; Isa.Shl; Isa.Shr; Isa.Slt; Isa.Seq ]
  in
  let cond = oneofl [ Isa.Eq; Isa.Ne; Isa.Lt; Isa.Ge ] in
  oneof
    [
      map3 (fun o (a, b) c -> Isa.Alu (o, a, b, c)) aluop (pair reg reg) reg;
      map3 (fun o (a, b) i -> Isa.Alui (o, a, b, i)) aluop (pair reg reg) imm;
      map2 (fun r i -> Isa.Li (r, i)) reg imm;
      map3 (fun a b i -> Isa.Lw (a, b, i)) reg reg imm;
      map3 (fun a b i -> Isa.Sw (a, b, i)) reg reg imm;
      map3
        (fun c (a, b) t -> Isa.B (c, a, b, t))
        cond (pair reg reg) (int_bound 100000);
      map (fun t -> Isa.J t) (int_bound 100000);
      map2 (fun r t -> Isa.Jal (r, t)) reg (int_bound 100000);
      map (fun r -> Isa.Jr r) reg;
      map2 (fun r p -> Isa.In (r, p)) reg (int_bound 5000);
      map2 (fun p r -> Isa.Out (p, r)) (int_bound 5000) reg;
      map3
        (fun e (a, b) c -> Isa.Custom (e, a, b, c))
        (int_bound 2000) (pair reg reg) reg;
      oneofl [ Isa.Ei; Isa.Di; Isa.Rti; Isa.Nop; Isa.Halt ];
    ]

let arb_program =
  QCheck.make
    ~print:(fun p ->
      String.concat "\n"
        (List.map
           (Format.asprintf "%a" (Isa.pp ~target:string_of_int))
           (Array.to_list p)))
    QCheck.Gen.(map Array.of_list (list_size (int_range 0 40) gen_instr))

let prop_encode_roundtrip =
  QCheck.Test.make ~name:"binary encoding roundtrips" ~count:300 arb_program
    (fun p -> Encoding.decode_program (Encoding.encode_program p) = p)

(* textual assembly roundtrips through print + parse (instructions only;
   the printer writes branch targets as rendered labels, so we wrap each
   program with generated label names) *)
let prop_asm_text_roundtrip =
  QCheck.Test.make ~name:"asm text roundtrips through print/parse"
    ~count:200 arb_program (fun p ->
      let items =
        Array.to_list p
        |> List.map (fun i ->
               Asm.Ins (Isa.map_target (fun t -> Printf.sprintf "L%d" t) i))
      in
      (* declare every referenced label at the end so parse and
         re-assembly stay well-formed *)
      let targets =
        List.filter_map
          (function
            | Asm.Ins (Isa.B (_, _, _, l) : string Isa.instr) -> Some l
            | Asm.Ins (Isa.J l) -> Some l
            | Asm.Ins (Isa.Jal (_, l)) -> Some l
            | _ -> None)
          items
        |> List.sort_uniq compare
      in
      let items = items @ List.map (fun l -> Asm.Label l) targets in
      Asm.parse (Asm.print items) = items)

(* ------------------------------------------------------------------ *)
(* Hotspot                                                             *)
(* ------------------------------------------------------------------ *)

let test_hotspot_finds_inner_loop () =
  let _, fir, binds = List.find (fun (n, _, _) -> n = "fir") Kernels.all in
  let p = Hotspot.analyze fir binds in
  check Alcotest.bool "total positive" true (p.Hotspot.total_cycles > 1000);
  (* fractions sum to ~1 *)
  let sum =
    List.fold_left (fun a r -> a +. r.Hotspot.fraction) 0.0 p.Hotspot.regions
  in
  check (Alcotest.float 0.01) "fractions sum to 1" 1.0 sum;
  (* the hottest region is a loop, not the entry *)
  (match p.Hotspot.regions with
  | top :: _ ->
      check Alcotest.bool
        ("hottest is a loop: " ^ top.Hotspot.label)
        true
        (String.length top.Hotspot.label >= 3
        && String.sub top.Hotspot.label 0 3 = "for")
  | [] -> fail "no regions");
  (* results surface the behaviour's outputs *)
  check Alcotest.bool "has y" true (List.mem_assoc "y" p.Hotspot.results)

let test_hotspot_coverage () =
  let _, fir, binds = List.find (fun (n, _, _) -> n = "fir") Kernels.all in
  let p = Hotspot.analyze fir binds in
  let hot = Hotspot.hot_regions ~coverage:0.5 p in
  let all = Hotspot.hot_regions ~coverage:1.1 p in
  check Alcotest.bool "covering half needs fewer regions" true
    (List.length hot <= List.length all);
  check Alcotest.bool "hot regions non-empty" true (hot <> []);
  let covered =
    List.fold_left (fun a r -> a +. r.Hotspot.fraction) 0.0 hot
  in
  check Alcotest.bool "coverage reached" true (covered >= 0.5)

let test_hotspot_to_task_graph () =
  let stage name = List.find (fun (n, _, _) -> n = name) Kernels.all in
  let _, p1, b1 = stage "fir" in
  let _, p2, b2 = stage "crc32" in
  let g =
    Hotspot.to_task_graph ~deadline_factor:0.6 [ (p1, b1); (p2, b2) ]
  in
  check Alcotest.int "two tasks" 2 (Codesign_ir.Task_graph.n_tasks g);
  let t0 = g.Codesign_ir.Task_graph.tasks.(0) in
  (* software cost is the measured ISS cycle count *)
  let measured = (Hotspot.analyze p1 b1).Hotspot.total_cycles in
  check Alcotest.int "measured sw cycles" measured
    t0.Codesign_ir.Task_graph.sw_cycles;
  check Alcotest.bool "hw faster" true
    (t0.Codesign_ir.Task_graph.hw_cycles
    < t0.Codesign_ir.Task_graph.sw_cycles);
  (* and the graph is partitionable: with a tight deadline something
     must move to hardware *)
  let r = Codesign.Partition.kl g in
  check Alcotest.bool "partition uses hw" true
    (r.Codesign.Partition.eval.Codesign.Cost.n_hw > 0)

let test_hotspot_oob_clamped () =
  (* out-of-segment accesses used to diverge: the interpreter clamps
     while the compiled code escaped the data segment (trapping, or
     worse, silently reading code space).  The code generator now emits
     the same clamp, so profiling a wild-index program both succeeds and
     agrees with the reference semantics. *)
  let wild =
    {
      B.name = "wild";
      params = [ "i" ];
      arrays = [ ("t", 2) ];
      results = [ "x" ];
      body =
        [
          B.Store ("t", B.Var "i", B.Int 7);
          B.Assign ("x", B.Idx ("t", B.Var "i"));
          B.Assign ("x", B.Bin (B.Add, B.Var "x", B.Idx ("t", B.Int 500000)));
        ];
    }
  in
  let binds = [ ("i", 500000) ] in
  let p = Hotspot.analyze wild binds in
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "compiled results clamp like the interpreter" (B.run wild binds)
    p.Hotspot.results;
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "both store and loads clamp to t[1]"
    [ ("x", 14) ]
    p.Hotspot.results

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "codesign_extras"
    [
      ( "encoding",
        [
          Alcotest.test_case "sample roundtrips" `Quick
            test_encode_roundtrip_samples;
          Alcotest.test_case "word counts" `Quick test_encode_word_counts;
          Alcotest.test_case "program roundtrip" `Quick test_encode_program;
          Alcotest.test_case "errors" `Quick test_encode_errors;
          QCheck_alcotest.to_alcotest prop_encode_roundtrip;
          QCheck_alcotest.to_alcotest prop_asm_text_roundtrip;
        ] );
      ( "hotspot",
        [
          Alcotest.test_case "finds inner loop" `Quick
            test_hotspot_finds_inner_loop;
          Alcotest.test_case "coverage" `Quick test_hotspot_coverage;
          Alcotest.test_case "to task graph" `Quick
            test_hotspot_to_task_graph;
          Alcotest.test_case "oob clamped" `Quick test_hotspot_oob_clamped;
        ] );
    ]
