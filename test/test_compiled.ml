(* Old-vs-new equivalence property tests for the compiled simulation hot
   paths: random netlists through the interpreted vs compiled
   {!Logic_sim} backends, and random fuzz behaviours through a manual
   [Cpu.step] loop vs [Cpu.run_fast] — both pairs must be observationally
   identical (outputs, cycle counts, architectural state). *)

module N = Codesign_rtl.Netlist
module L = Codesign_rtl.Logic_sim
module Rng = Codesign_ir.Rng
module Cpu = Codesign_isa.Cpu
module Codegen = Codesign_isa.Codegen
module Asm = Codesign_isa.Asm
module Gen = Codesign_fuzz.Gen

let check = Alcotest.check
let fail = Alcotest.fail

(* ------------------------------------------------------------------ *)
(* random netlists                                                     *)
(* ------------------------------------------------------------------ *)

(* A random feed-forward netlist: gates draw operands from the pool of
   already-driven nets, so the combinational part is a DAG by
   construction; DFF outputs join the pool like any other net. *)
let gen_netlist rng =
  let b = N.Builder.create ~name:"rand" () in
  let n_inputs = 2 + Rng.int rng 4 in
  let inputs = List.init n_inputs (fun i -> Printf.sprintf "in%d" i) in
  let pool = ref (N.Builder.const0 :: N.Builder.const1 :: []) in
  List.iter (fun nm -> pool := N.Builder.input b nm :: !pool) inputs;
  let pick () = Rng.pick rng !pool in
  let n_gates = 5 + Rng.int rng 45 in
  for _ = 1 to n_gates do
    let out =
      match Rng.int rng 9 with
      | 0 -> N.Builder.gate b N.And [ pick (); pick () ]
      | 1 -> N.Builder.gate b N.Or [ pick (); pick () ]
      | 2 -> N.Builder.gate b N.Xor [ pick (); pick () ]
      | 3 -> N.Builder.gate b N.Nand [ pick (); pick () ]
      | 4 -> N.Builder.gate b N.Nor [ pick (); pick () ]
      | 5 -> N.Builder.gate b N.Not [ pick () ]
      | 6 -> N.Builder.gate b N.Buf [ pick () ]
      | 7 -> N.Builder.gate b N.Mux [ pick (); pick (); pick () ]
      | _ -> N.Builder.gate b N.Dff [ pick () ]
    in
    pool := out :: !pool
  done;
  let n_outputs = 1 + Rng.int rng 3 in
  for i = 0 to n_outputs - 1 do
    N.Builder.output b (Printf.sprintf "out%d" i) (pick ())
  done;
  (N.Builder.finish b, inputs)

let gen_vectors rng n_inputs =
  let n_vecs = 1 + Rng.int rng 12 in
  List.init n_vecs (fun _ -> List.init n_inputs (fun _ -> Rng.int rng 2))

let test_logic_sim_equivalence () =
  let rng = Rng.create 2024 in
  for case = 0 to 199 do
    let net, inputs = gen_netlist rng in
    let vectors = gen_vectors rng (List.length inputs) in
    let compiled = L.create net in
    let interp = L.Interp.create net in
    let r_compiled = L.run_vectors compiled ~inputs vectors in
    let r_interp = L.Interp.run_vectors interp ~inputs vectors in
    if r_compiled <> r_interp then
      fail
        (Printf.sprintf "case %d: compiled and interpreted outputs differ"
           case);
    check Alcotest.int
      (Printf.sprintf "case %d: cycles_run" case)
      (L.Interp.cycles_run interp)
      (L.cycles_run compiled);
    (* the compiled default resets first, so a second identical run is an
       independent experiment with identical waveforms *)
    if L.run_vectors compiled ~inputs vectors <> r_compiled then
      fail (Printf.sprintf "case %d: second run_vectors call differed" case)
  done

let test_logic_sim_eval_equivalence () =
  (* pure combinational evaluation (no clock): eval + output only *)
  let rng = Rng.create 77 in
  for case = 0 to 99 do
    let net, inputs = gen_netlist rng in
    let vec = List.map (fun _ -> Rng.int rng 2) inputs in
    let compiled = L.create net in
    let interp = L.Interp.create net in
    List.iter2 (fun nm v -> L.set_input compiled nm v) inputs vec;
    List.iter2 (fun nm v -> L.Interp.set_input interp nm v) inputs vec;
    L.eval compiled;
    L.Interp.eval interp;
    List.iter
      (fun (nm, _) ->
        check Alcotest.int
          (Printf.sprintf "case %d: output %s" case nm)
          (L.Interp.output interp nm) (L.output compiled nm))
      net.N.outputs
  done

(* ------------------------------------------------------------------ *)
(* step loop vs run_fast                                               *)
(* ------------------------------------------------------------------ *)

let status_eq a b =
  match (a, b) with
  | Cpu.Running, Cpu.Running | Cpu.Halted, Cpu.Halted -> true
  | Cpu.Trapped x, Cpu.Trapped y -> x = y
  | _ -> false

let show_status = function
  | Cpu.Running -> "Running"
  | Cpu.Halted -> "Halted"
  | Cpu.Trapped m -> "Trapped " ^ m

let test_iss_run_fast_equivalence () =
  let mem_words = 65536 in
  let fuel = 200_000 in
  let n_checked = ref 0 in
  for seed = 0 to 99 do
    let p = Gen.behavior (Rng.create (9000 + seed)) in
    match Codegen.compile p with
    | exception Invalid_argument _ -> ()
    | items, _lay -> (
        match Asm.assemble items with
        | exception Invalid_argument _ -> ()
        | img ->
            incr n_checked;
            let trace_of () =
              let out = ref [] in
              let env =
                {
                  Cpu.default_env with
                  Cpu.port_out = (fun pt v -> out := (pt, v) :: !out);
                }
              in
              (Cpu.create ~mem_words ~env img.Asm.code, out)
            in
            let cpu_step, trace_step = trace_of () in
            let cpu_fast, trace_fast = trace_of () in
            let steps = ref 0 in
            while Cpu.status cpu_step = Cpu.Running && !steps < fuel do
              ignore (Cpu.step cpu_step);
              incr steps
            done;
            ignore (Cpu.run_fast cpu_fast ~fuel);
            let where what = Printf.sprintf "seed %d: %s" seed what in
            if not (status_eq (Cpu.status cpu_step) (Cpu.status cpu_fast))
            then
              fail
                (where
                   (Printf.sprintf "status %s vs %s"
                      (show_status (Cpu.status cpu_step))
                      (show_status (Cpu.status cpu_fast))));
            check Alcotest.int (where "cycles") (Cpu.cycles cpu_step)
              (Cpu.cycles cpu_fast);
            check Alcotest.int (where "instret") (Cpu.instret cpu_step)
              (Cpu.instret cpu_fast);
            check Alcotest.int (where "pc") (Cpu.pc cpu_step)
              (Cpu.pc cpu_fast);
            for r = 0 to Codesign_isa.Isa.n_regs - 1 do
              if Cpu.reg cpu_step r <> Cpu.reg cpu_fast r then
                fail
                  (where
                     (Printf.sprintf "reg r%d: %d vs %d" r
                        (Cpu.reg cpu_step r) (Cpu.reg cpu_fast r)))
            done;
            for a = 0 to mem_words - 1 do
              if Cpu.read_mem cpu_step a <> Cpu.read_mem cpu_fast a then
                fail
                  (where
                     (Printf.sprintf "mem[%d]: %d vs %d" a
                        (Cpu.read_mem cpu_step a) (Cpu.read_mem cpu_fast a)))
            done;
            if !trace_step <> !trace_fast then
              fail (where "port traces differ"))
  done;
  check Alcotest.bool
    (Printf.sprintf "most behaviours compiled (%d/100)" !n_checked)
    true
    (!n_checked >= 80)

let () =
  Alcotest.run "codesign_compiled"
    [
      ( "logic_sim",
        [
          Alcotest.test_case "200 random netlists: interp = compiled" `Quick
            test_logic_sim_equivalence;
          Alcotest.test_case "combinational eval agrees" `Quick
            test_logic_sim_eval_equivalence;
        ] );
      ( "iss",
        [
          Alcotest.test_case "step loop = run_fast on fuzz behaviours"
            `Quick test_iss_run_fast_equivalence;
        ] );
    ]
