(* Old-vs-new equivalence property tests for the compiled simulation hot
   paths: random netlists through the interpreted vs compiled
   {!Logic_sim} backends, and random fuzz behaviours through a manual
   [Cpu.step] loop vs [Cpu.run_fast] vs the block-compiled tier
   [Cpu.run_blocks] — all must be observationally identical (outputs,
   cycle counts, architectural state), including at fuel boundaries
   that land mid-block, on branches into the middle of decoded blocks,
   and on interrupts raised by memory hooks mid-block.  The temporally
   decoupled co-simulation quantum rides on the block tier, so its
   invariants (quantum 1 byte-identical, larger quanta
   checksum-preserving) are pinned here too. *)

module N = Codesign_rtl.Netlist
module L = Codesign_rtl.Logic_sim
module Rng = Codesign_ir.Rng
module Cpu = Codesign_isa.Cpu
module Codegen = Codesign_isa.Codegen
module Asm = Codesign_isa.Asm
module Gen = Codesign_fuzz.Gen

let check = Alcotest.check
let fail = Alcotest.fail

(* ------------------------------------------------------------------ *)
(* random netlists                                                     *)
(* ------------------------------------------------------------------ *)

(* A random feed-forward netlist: gates draw operands from the pool of
   already-driven nets, so the combinational part is a DAG by
   construction; DFF outputs join the pool like any other net. *)
let gen_netlist rng =
  let b = N.Builder.create ~name:"rand" () in
  let n_inputs = 2 + Rng.int rng 4 in
  let inputs = List.init n_inputs (fun i -> Printf.sprintf "in%d" i) in
  let pool = ref (N.Builder.const0 :: N.Builder.const1 :: []) in
  List.iter (fun nm -> pool := N.Builder.input b nm :: !pool) inputs;
  let pick () = Rng.pick rng !pool in
  let n_gates = 5 + Rng.int rng 45 in
  for _ = 1 to n_gates do
    let out =
      match Rng.int rng 9 with
      | 0 -> N.Builder.gate b N.And [ pick (); pick () ]
      | 1 -> N.Builder.gate b N.Or [ pick (); pick () ]
      | 2 -> N.Builder.gate b N.Xor [ pick (); pick () ]
      | 3 -> N.Builder.gate b N.Nand [ pick (); pick () ]
      | 4 -> N.Builder.gate b N.Nor [ pick (); pick () ]
      | 5 -> N.Builder.gate b N.Not [ pick () ]
      | 6 -> N.Builder.gate b N.Buf [ pick () ]
      | 7 -> N.Builder.gate b N.Mux [ pick (); pick (); pick () ]
      | _ -> N.Builder.gate b N.Dff [ pick () ]
    in
    pool := out :: !pool
  done;
  let n_outputs = 1 + Rng.int rng 3 in
  for i = 0 to n_outputs - 1 do
    N.Builder.output b (Printf.sprintf "out%d" i) (pick ())
  done;
  (N.Builder.finish b, inputs)

let gen_vectors rng n_inputs =
  let n_vecs = 1 + Rng.int rng 12 in
  List.init n_vecs (fun _ -> List.init n_inputs (fun _ -> Rng.int rng 2))

let test_logic_sim_equivalence () =
  let rng = Rng.create 2024 in
  for case = 0 to 199 do
    let net, inputs = gen_netlist rng in
    let vectors = gen_vectors rng (List.length inputs) in
    let compiled = L.create net in
    let interp = L.Interp.create net in
    let r_compiled = L.run_vectors compiled ~inputs vectors in
    let r_interp = L.Interp.run_vectors interp ~inputs vectors in
    if r_compiled <> r_interp then
      fail
        (Printf.sprintf "case %d: compiled and interpreted outputs differ"
           case);
    check Alcotest.int
      (Printf.sprintf "case %d: cycles_run" case)
      (L.Interp.cycles_run interp)
      (L.cycles_run compiled);
    (* the compiled default resets first, so a second identical run is an
       independent experiment with identical waveforms *)
    if L.run_vectors compiled ~inputs vectors <> r_compiled then
      fail (Printf.sprintf "case %d: second run_vectors call differed" case)
  done

let test_logic_sim_eval_equivalence () =
  (* pure combinational evaluation (no clock): eval + output only *)
  let rng = Rng.create 77 in
  for case = 0 to 99 do
    let net, inputs = gen_netlist rng in
    let vec = List.map (fun _ -> Rng.int rng 2) inputs in
    let compiled = L.create net in
    let interp = L.Interp.create net in
    List.iter2 (fun nm v -> L.set_input compiled nm v) inputs vec;
    List.iter2 (fun nm v -> L.Interp.set_input interp nm v) inputs vec;
    L.eval compiled;
    L.Interp.eval interp;
    List.iter
      (fun (nm, _) ->
        check Alcotest.int
          (Printf.sprintf "case %d: output %s" case nm)
          (L.Interp.output interp nm) (L.output compiled nm))
      net.N.outputs
  done

(* ------------------------------------------------------------------ *)
(* step loop vs run_fast vs run_blocks                                 *)
(* ------------------------------------------------------------------ *)

let status_eq a b =
  match (a, b) with
  | Cpu.Running, Cpu.Running | Cpu.Halted, Cpu.Halted -> true
  | Cpu.Trapped x, Cpu.Trapped y -> x = y
  | _ -> false

let show_status = function
  | Cpu.Running -> "Running"
  | Cpu.Halted -> "Halted"
  | Cpu.Trapped m -> "Trapped " ^ m

(* Full architectural-state comparison: status (with trap message),
   cycle and instruction counters, pc, register file and data memory.
   [ref_cpu] is always the precise step-loop machine. *)
let compare_cpus ~where ~mem_words ref_cpu other_cpu =
  if not (status_eq (Cpu.status ref_cpu) (Cpu.status other_cpu)) then
    fail
      (where
         (Printf.sprintf "status %s vs %s"
            (show_status (Cpu.status ref_cpu))
            (show_status (Cpu.status other_cpu))));
  check Alcotest.int (where "cycles") (Cpu.cycles ref_cpu)
    (Cpu.cycles other_cpu);
  check Alcotest.int (where "instret") (Cpu.instret ref_cpu)
    (Cpu.instret other_cpu);
  check Alcotest.int (where "pc") (Cpu.pc ref_cpu) (Cpu.pc other_cpu);
  for r = 0 to Codesign_isa.Isa.n_regs - 1 do
    if Cpu.reg ref_cpu r <> Cpu.reg other_cpu r then
      fail
        (where
           (Printf.sprintf "reg r%d: %d vs %d" r (Cpu.reg ref_cpu r)
              (Cpu.reg other_cpu r)))
  done;
  for a = 0 to mem_words - 1 do
    if Cpu.read_mem ref_cpu a <> Cpu.read_mem other_cpu a then
      fail
        (where
           (Printf.sprintf "mem[%d]: %d vs %d" a (Cpu.read_mem ref_cpu a)
              (Cpu.read_mem other_cpu a)))
  done

let step_loop cpu ~fuel =
  let steps = ref 0 in
  while Cpu.status cpu = Cpu.Running && !steps < fuel do
    ignore (Cpu.step cpu);
    incr steps
  done;
  !steps

let test_iss_three_way_equivalence () =
  let mem_words = 65536 in
  let fuel = 200_000 in
  let n_checked = ref 0 in
  let blocks_seen = ref 0 in
  for seed = 0 to 99 do
    let p = Gen.behavior (Rng.create (9000 + seed)) in
    match Codegen.compile p with
    | exception Invalid_argument _ -> ()
    | items, _lay -> (
        match Asm.assemble items with
        | exception Invalid_argument _ -> ()
        | img ->
            incr n_checked;
            let trace_of () =
              let out = ref [] in
              let env =
                {
                  Cpu.default_env with
                  Cpu.port_out = (fun pt v -> out := (pt, v) :: !out);
                }
              in
              (Cpu.create ~mem_words ~env img.Asm.code, out)
            in
            let cpu_step, trace_step = trace_of () in
            let cpu_fast, trace_fast = trace_of () in
            let cpu_blocks, trace_blocks = trace_of () in
            ignore (step_loop cpu_step ~fuel);
            ignore (Cpu.run_fast cpu_fast ~fuel);
            ignore (Cpu.run_blocks cpu_blocks ~fuel);
            blocks_seen := !blocks_seen + Cpu.blocks_compiled cpu_blocks;
            let where_fast what =
              Printf.sprintf "seed %d (run_fast): %s" seed what
            in
            let where_blocks what =
              Printf.sprintf "seed %d (run_blocks): %s" seed what
            in
            compare_cpus ~where:where_fast ~mem_words cpu_step cpu_fast;
            compare_cpus ~where:where_blocks ~mem_words cpu_step cpu_blocks;
            if !trace_step <> !trace_fast then
              fail (where_fast "port traces differ");
            if !trace_step <> !trace_blocks then
              fail (where_blocks "port traces differ"))
  done;
  check Alcotest.bool
    (Printf.sprintf "most behaviours compiled (%d/100)" !n_checked)
    true
    (!n_checked >= 80);
  check Alcotest.bool
    (Printf.sprintf "block tier actually decoded blocks (%d)" !blocks_seen)
    true (!blocks_seen > 0)

(* Fuel boundaries landing mid-block: drive the step loop and the block
   tier in identical odd-sized fuel slices and require identical state
   at {e every} slice boundary — the block tier must stop exactly where
   the interpreter does, resume from the middle of a decoded block, and
   charge the same fuel. *)
let test_iss_block_fuel_slices () =
  let mem_words = 65536 in
  for seed = 0 to 29 do
    let p = Gen.behavior (Rng.create (17_000 + seed)) in
    match Codegen.compile p with
    | exception Invalid_argument _ -> ()
    | items, _lay -> (
        match Asm.assemble items with
        | exception Invalid_argument _ -> ()
        | img ->
            let cpu_step = Cpu.create ~mem_words img.Asm.code in
            let cpu_blocks = Cpu.create ~mem_words img.Asm.code in
            let slice = 1 + (seed mod 13) in
            let total = ref 0 in
            let continue = ref true in
            while !continue do
              let s1 = step_loop cpu_step ~fuel:slice in
              let s2 = Cpu.run_blocks cpu_blocks ~fuel:slice in
              let where what =
                Printf.sprintf "seed %d slice@%d: %s" seed !total what
              in
              check Alcotest.int (where "fuel consumed") s1 s2;
              compare_cpus ~where ~mem_words cpu_step cpu_blocks;
              total := !total + s1;
              if s1 = 0 || Cpu.status cpu_step <> Cpu.Running
                 || !total > 50_000
              then continue := false
            done)
  done

(* Straight-line fuel sweep: every possible fuel boundary of a single
   block, including 0, mid-block, exactly-at-terminator and past the
   halt. *)
let test_iss_straightline_fuel_sweep () =
  let mem_words = 4096 in
  let src =
    {|
  li r1, 1
  addi r2, r1, 10
  li r3, 3
  sw r3, 100(r0)
  lw r4, 100(r0)
  addi r5, r4, 1
  li r6, 6
  nop
  addi r7, r6, 7
  halt
|}
  in
  let img = Asm.assemble (Asm.parse src) in
  for fuel = 0 to 12 do
    let cpu_step = Cpu.create ~mem_words img.Asm.code in
    let cpu_blocks = Cpu.create ~mem_words img.Asm.code in
    ignore (step_loop cpu_step ~fuel);
    ignore (Cpu.run_blocks cpu_blocks ~fuel);
    let where what = Printf.sprintf "fuel %d: %s" fuel what in
    compare_cpus ~where ~mem_words cpu_step cpu_blocks
  done

(* A branch back into the middle of an already-decoded block: the
   target pc gets its own overlapping block, and both passes (entry
   from the top, entry into the middle) must count cycles exactly like
   the interpreter. *)
let test_iss_branch_into_middle () =
  let mem_words = 4096 in
  let src =
    {|
  li r9, 2
  li r1, 1
mid:
  li r2, 2
  addi r3, r2, 1
  subi r9, r9, 1
  b.ne r9, r0, mid
  halt
|}
  in
  let img = Asm.assemble (Asm.parse src) in
  let cpu_step = Cpu.create ~mem_words img.Asm.code in
  let cpu_blocks = Cpu.create ~mem_words img.Asm.code in
  ignore (step_loop cpu_step ~fuel:1000);
  ignore (Cpu.run_blocks cpu_blocks ~fuel:1000);
  let where what = Printf.sprintf "branch-into-middle: %s" what in
  compare_cpus ~where ~mem_words cpu_step cpu_blocks;
  check Alcotest.bool "overlapping block decoded" true
    (Cpu.blocks_compiled cpu_blocks >= 2)

(* An interrupt raised by a memory-mapped read in the middle of a
   block: the hook drives the request line high, so the block tier must
   cut the block at that instruction boundary and vector exactly where
   the interpreter does.  The ISR acknowledges through a second
   memory-mapped read that drives the line low again. *)
let test_iss_irq_mid_block () =
  let mem_words = 4096 in
  let src =
    {|
  j main
isr:
  li r5, 1
  lw r6, 3000(r0)
  rti
main:
  ei
  li r1, 1
  addi r2, r1, 1
  lw r3, 2000(r0)
  addi r4, r2, 10
  addi r7, r4, 1
  halt
|}
  in
  let img = Asm.assemble (Asm.parse src) in
  let mk () =
    let cell = ref None in
    let env =
      {
        Cpu.default_env with
        Cpu.mem_read =
          (fun a ->
            match !cell with
            | None -> None
            | Some cpu ->
                if a = 2000 then begin
                  Cpu.set_irq cpu true;
                  Some 7
                end
                else if a = 3000 then begin
                  Cpu.set_irq cpu false;
                  Some 0
                end
                else None);
      }
    in
    let cpu = Cpu.create ~mem_words ~env img.Asm.code in
    cell := Some cpu;
    cpu
  in
  let cpu_step = mk () in
  let cpu_blocks = mk () in
  ignore (step_loop cpu_step ~fuel:1000);
  ignore (Cpu.run_blocks cpu_blocks ~fuel:1000);
  let where what = Printf.sprintf "irq-mid-block: %s" what in
  compare_cpus ~where ~mem_words cpu_step cpu_blocks;
  check Alcotest.int (where "ISR ran") 1 (Cpu.reg cpu_blocks 5);
  check Alcotest.int (where "mmio value read") 7 (Cpu.reg cpu_blocks 3);
  check Alcotest.int (where "post-irq code ran") 12 (Cpu.reg cpu_blocks 4)

(* ------------------------------------------------------------------ *)
(* temporally decoupled co-simulation quantum                          *)
(* ------------------------------------------------------------------ *)

module Cosim = Codesign.Cosim

let quantum_assignments =
  [
    Cosim.pure Cosim.Pin;
    { Cosim.src = Cosim.Pin; cpu = Cosim.Transaction; sink = Cosim.Driver };
    { Cosim.src = Cosim.Driver; cpu = Cosim.Driver; sink = Cosim.Message };
    Cosim.pure Cosim.Message;
  ]

let assignment_name (a : Cosim.assignment) =
  Printf.sprintf "%s:%s:%s"
    (Cosim.level_name a.Cosim.src)
    (Cosim.level_name a.Cosim.cpu)
    (Cosim.level_name a.Cosim.sink)

(* quantum 1 must be byte-identical to the historic tight coupling:
   the whole metrics record, not just the checksum *)
let test_quantum_one_identical () =
  List.iter
    (fun levels ->
      let m_default = Cosim.run_echo_assignment ~levels () in
      let m_q1 = Cosim.run_echo_assignment ~levels ~quantum:1 () in
      check Alcotest.bool
        (Printf.sprintf "%s: quantum 1 = default (all metrics)"
           (assignment_name levels))
        true
        (m_default = m_q1))
    quantum_assignments

(* larger quanta preserve function and cost less simulator effort *)
let test_quantum_preserves_checksum () =
  List.iter
    (fun levels ->
      let m1 = Cosim.run_echo_assignment ~levels ~quantum:1 () in
      List.iter
        (fun q ->
          let mq = Cosim.run_echo_assignment ~levels ~quantum:q () in
          let name what =
            Printf.sprintf "%s q=%d: %s" (assignment_name levels) q what
          in
          check Alcotest.bool (name "completed") true
            (mq.Cosim.outcome = Cosim.Completed);
          check Alcotest.int (name "checksum") m1.Cosim.checksum
            mq.Cosim.checksum;
          check Alcotest.bool
            (name
               (Printf.sprintf "events %d <= %d" mq.Cosim.events
                  m1.Cosim.events))
            true
            (mq.Cosim.events <= m1.Cosim.events))
        [ 2; 8; 64; 1024 ])
    quantum_assignments

(* pinned golden for one mixed assignment: the decoupled run must keep
   the functional checksum and the simulated completion time of the
   tightly coupled reference while dispatching far fewer events *)
let test_quantum_golden () =
  let levels =
    { Cosim.src = Cosim.Pin; cpu = Cosim.Driver; sink = Cosim.Transaction }
  in
  let m1 = Cosim.run_echo_assignment ~levels ~quantum:1 () in
  let m64 = Cosim.run_echo_assignment ~levels ~quantum:64 () in
  check Alcotest.int "golden: checksum preserved" m1.Cosim.checksum
    m64.Cosim.checksum;
  check Alcotest.int "golden: sim_cycles preserved" m1.Cosim.sim_cycles
    m64.Cosim.sim_cycles;
  check Alcotest.bool
    (Printf.sprintf "golden: events shrink (%d < %d)" m64.Cosim.events
       m1.Cosim.events)
    true
    (m64.Cosim.events < m1.Cosim.events)

let () =
  Alcotest.run "codesign_compiled"
    [
      ( "logic_sim",
        [
          Alcotest.test_case "200 random netlists: interp = compiled" `Quick
            test_logic_sim_equivalence;
          Alcotest.test_case "combinational eval agrees" `Quick
            test_logic_sim_eval_equivalence;
        ] );
      ( "iss",
        [
          Alcotest.test_case
            "step loop = run_fast = run_blocks on fuzz behaviours" `Quick
            test_iss_three_way_equivalence;
          Alcotest.test_case "fuel slices land mid-block identically" `Quick
            test_iss_block_fuel_slices;
          Alcotest.test_case "straight-line fuel sweep" `Quick
            test_iss_straightline_fuel_sweep;
          Alcotest.test_case "branch into the middle of a decoded block"
            `Quick test_iss_branch_into_middle;
          Alcotest.test_case "hook-raised interrupt cuts the block" `Quick
            test_iss_irq_mid_block;
        ] );
      ( "quantum",
        [
          Alcotest.test_case "quantum 1 is byte-identical to default" `Quick
            test_quantum_one_identical;
          Alcotest.test_case "larger quanta preserve the checksum" `Quick
            test_quantum_preserves_checksum;
          Alcotest.test_case "pinned golden: pin:driver:tlm at quantum 64"
            `Quick test_quantum_golden;
        ] );
    ]
