(* Robustness and cross-cutting property tests: VCD recording, failure
   injection (deadlocks, traps, bad addresses surfacing through the
   stack), PRNG behaviour, and cost-model invariants under random
   inputs. *)

module K = Codesign_sim.Kernel
module Ch = Codesign_sim.Channel
module S = Codesign_sim.Signal
module Vcd = Codesign_sim.Vcd
module Rng = Codesign_ir.Rng
module T = Codesign_ir.Task_graph
module B = Codesign_ir.Behavior
module Pn = Codesign_ir.Process_network
open Codesign
module Tgff = Codesign_workloads.Tgff
module Apps = Codesign_workloads.Apps

let check = Alcotest.check
let fail = Alcotest.fail

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* VCD                                                                 *)
(* ------------------------------------------------------------------ *)

let test_vcd_records_changes () =
  let k = K.create () in
  let s = S.create ~name:"data" k 0 in
  let vcd = Vcd.create k in
  Vcd.watch vcd ~width:8 s;
  K.spawn k (fun () ->
      K.wait 5;
      S.write s 3;
      K.wait 5;
      S.write s 255);
  ignore (K.run ~expect_quiescent:true k);
  check
    (Alcotest.list
       (Alcotest.triple Alcotest.int Alcotest.string Alcotest.int))
    "changes"
    [ (0, "data", 0); (5, "data", 3); (10, "data", 255) ]
    (Vcd.changes vcd)

let test_vcd_dump_format () =
  let k = K.create () in
  let req = S.create ~name:"req" k 0 in
  let addr = S.create ~name:"addr" k 0 in
  let vcd = Vcd.create k in
  Vcd.watch vcd ~width:1 req;
  Vcd.watch vcd ~width:4 addr;
  K.spawn k (fun () ->
      K.wait 2;
      S.write addr 0b1010;
      S.write req 1;
      K.wait 3;
      S.write req 0);
  ignore (K.run ~expect_quiescent:true k);
  let doc = Vcd.dump vcd in
  check Alcotest.bool "header" true (contains doc "$timescale 1ns $end");
  check Alcotest.bool "var req" true (contains doc "$var wire 1 ! req $end");
  check Alcotest.bool "var addr" true
    (contains doc "$var wire 4 \" addr $end");
  check Alcotest.bool "scalar change" true (contains doc "1!");
  check Alcotest.bool "vector change" true (contains doc "b1010 \"");
  check Alcotest.bool "time marker" true (contains doc "#2\n");
  (* one #2 section only (grouped) *)
  let count_marker =
    String.split_on_char '\n' doc
    |> List.filter (fun l -> l = "#2")
    |> List.length
  in
  check Alcotest.int "grouped timestamps" 1 count_marker

let test_vcd_on_pin_bus () =
  (* record the actual bus wires during a pin-level transfer *)
  let k = K.create () in
  let map =
    Codesign_bus.Memory_map.create
      [ Codesign_bus.Memory_map.ram ~name:"ram" ~base:0 ~size:16 ]
  in
  let bus = Codesign_bus.Bus.Pin.create k map in
  let vcd = Vcd.create k in
  Vcd.watch vcd ~width:1 (Codesign_bus.Bus.Pin.req_wire bus);
  Vcd.watch vcd ~width:1 (Codesign_bus.Bus.Pin.ack_wire bus);
  K.spawn k (fun () ->
      Codesign_bus.Bus.Pin.write bus 3 7;
      ignore (Codesign_bus.Bus.Pin.read bus 3));
  ignore (K.run ~expect_quiescent:true k);
  let doc = Vcd.dump vcd in
  (* two transfers: req rises twice, ack rises twice *)
  let rises code =
    String.split_on_char '\n' doc
    |> List.filter (fun l -> l = "1" ^ code)
    |> List.length
  in
  check Alcotest.int "req pulses" 2 (rises "!");
  check Alcotest.int "ack pulses" 2 (rises "\"")

let test_vcd_watcher_quiescent_no_deadlock () =
  (* regression: VCD watchers are daemons, so a simulation that ends
     quiescent with watchers still blocked must not raise Deadlock even
     without ~expect_quiescent:true *)
  let k = K.create () in
  let s = S.create ~name:"data" k 0 in
  let vcd = Vcd.create k in
  Vcd.watch vcd ~width:8 s;
  K.spawn k (fun () ->
      K.wait 5;
      S.write s 3);
  ignore (K.run k);
  check
    (Alcotest.list
       (Alcotest.triple Alcotest.int Alcotest.string Alcotest.int))
    "changes recorded" [ (0, "data", 0); (5, "data", 3) ]
    (Vcd.changes vcd)

let test_vcd_dumpvars_initial_values () =
  (* regression: the dump carries a $dumpvars ... $end section with each
     signal's value at watch time, so viewers don't show 'x' until the
     first change *)
  let k = K.create () in
  let req = S.create ~name:"req" k 1 in
  let addr = S.create ~name:"addr" k 0b0110 in
  let vcd = Vcd.create k in
  Vcd.watch vcd ~width:1 req;
  Vcd.watch vcd ~width:4 addr;
  K.spawn k (fun () ->
      K.wait 2;
      S.write addr 0b1010);
  ignore (K.run k);
  let doc = Vcd.dump vcd in
  check Alcotest.bool "dumpvars section" true (contains doc "$dumpvars\n");
  check Alcotest.bool "initial scalar" true (contains doc "$dumpvars\n1!\n");
  check Alcotest.bool "initial vector" true (contains doc "b0110 \"\n$end\n");
  (* the change stream starts after the initial section *)
  check Alcotest.bool "change follows" true (contains doc "#2\nb1010 \"\n")

let test_vcd_wide_value_masked () =
  (* regression: a value wider than the declared width is masked to the
     width, not silently rendered wrong *)
  let k = K.create () in
  let s = S.create ~name:"nib" k 0 in
  let vcd = Vcd.create k in
  Vcd.watch vcd ~width:4 s;
  K.spawn k (fun () ->
      K.wait 1;
      S.write s 0x12 (* 5 bits: only the low nibble 0b0010 fits *));
  ignore (K.run k);
  let doc = Vcd.dump vcd in
  check Alcotest.bool "masked to width" true (contains doc "b0010 !");
  check Alcotest.bool "no truncated-prefix artifact" false
    (contains doc "b10010")

(* ------------------------------------------------------------------ *)
(* Failure injection                                                   *)
(* ------------------------------------------------------------------ *)

let test_network_deadlock_detected () =
  (* consumer expects more items than the producer sends *)
  let producer = Apps.producer ~chan:"c" ~count:2 () in
  let consumer = Apps.consumer ~chan:"c" ~count:5 ~port:1 () in
  let net =
    Pn.make
      [ (producer, Pn.Sw); (consumer, Pn.Sw) ]
      [ { Pn.cname = "c"; src = "producer"; dst = "consumer"; depth = 1; latency = 0 } ]
  in
  try
    ignore (Cosim.run_network net);
    fail "expected Deadlock"
  with K.Deadlock names ->
    check Alcotest.bool "names the blocked process" true
      (contains names "consumer")

let test_deadlock_names_every_blocked_process () =
  (* several distinct processes blocked on never-fed channels: the
     Deadlock payload must name each blocked non-daemon, and must not
     name daemons or processes that finished cleanly *)
  let k = K.create () in
  let c1 = Ch.create ~depth:1 ~name:"starve1" k () in
  let c2 = Ch.create ~depth:1 ~name:"starve2" k () in
  K.spawn ~name:"eater-one" k (fun () -> ignore (Ch.recv c1));
  K.spawn ~name:"eater-two" k (fun () -> ignore (Ch.recv c2));
  K.spawn ~name:"bystander" k (fun () -> K.wait 10);
  K.spawn ~name:"lurker" ~daemon:true k (fun () -> ignore (Ch.recv c1));
  (try
     ignore (K.run k);
     fail "expected Deadlock"
   with K.Deadlock names ->
     check Alcotest.bool "names eater-one" true (contains names "eater-one");
     check Alcotest.bool "names eater-two" true (contains names "eater-two");
     check Alcotest.bool "omits finished process" false
       (contains names "bystander");
     check Alcotest.bool "omits daemon" false (contains names "lurker"));
  ()

let test_network_trap_surfaces () =
  (* a software process that stores out of its data segment traps; the
     co-simulation must fail loudly, not silently *)
  let bad =
    {
      B.name = "bad";
      params = [];
      arrays = [];
      results = [];
      body = [ B.Store ("nosuch", B.Int 0, B.Int 1) ];
    }
  in
  (* Store to an undeclared array is rejected at compile time *)
  (try
     ignore (Codesign_isa.Codegen.compile bad);
     fail "expected unknown-array failure"
   with Invalid_argument _ -> ());
  ()

let test_network_trap_is_structured () =
  (* a runtime trap (a store into an array bigger than the CPU's data
     memory) must come back as [Net_trapped] data — never as an
     exception unwinding through the scheduler — and the rest of the
     network must keep running to completion *)
  let bad =
    {
      B.name = "bad";
      params = [];
      arrays = [ ("a", 100_000) ];
      results = [];
      body = [ B.Store ("a", B.Int 99_999, B.Int 1) ];
    }
  in
  let healthy = Apps.producer ~chan:"c" ~count:3 () in
  let consumer = Apps.consumer ~chan:"c" ~count:3 ~port:1 () in
  let net =
    Pn.make
      [ (bad, Pn.Sw); (healthy, Pn.Sw); (consumer, Pn.Sw) ]
      [ { Pn.cname = "c"; src = "producer"; dst = "consumer"; depth = 2; latency = 0 } ]
  in
  let r = Cosim.run_network net in
  (match r.Cosim.net_outcome with
  | Cosim.Net_trapped (p, m) ->
      check Alcotest.string "names the trapped process" "bad" p;
      check Alcotest.bool "message says what went wrong" true
        (String.length m > 0)
  | Cosim.Net_completed -> fail "expected Net_trapped");
  check Alcotest.bool "trapped process yields no results" true
    (List.assoc_opt "bad" r.Cosim.sw_results = None);
  check Alcotest.int "healthy consumer still delivered" 1
    (List.length
       (List.filter (fun (p, _, _) -> p = "consumer") r.Cosim.port_writes));
  check Alcotest.bool "healthy process results survive" true
    (List.assoc_opt "consumer" r.Cosim.sw_results <> None)

let test_unmapped_bus_address_raises () =
  let k = K.create () in
  let map =
    Codesign_bus.Memory_map.create
      [ Codesign_bus.Memory_map.ram ~name:"ram" ~base:0 ~size:16 ]
  in
  let bus = Codesign_bus.Bus.Tlm.create k map in
  let saw = ref false in
  K.spawn k (fun () ->
      try ignore (Codesign_bus.Bus.Tlm.read bus 999)
      with Invalid_argument _ -> saw := true);
  ignore (K.run k);
  check Alcotest.bool "unmapped read raised in-process" true !saw

let test_double_resume_rejected () =
  let k = K.create () in
  let resume_cell = ref None in
  K.spawn ~name:"victim" k (fun () ->
      K.suspend ~register:(fun resume -> resume_cell := Some resume));
  K.spawn ~name:"attacker" k (fun () ->
      K.wait 1;
      match !resume_cell with
      | Some resume -> (
          resume ();
          try
            resume ();
            fail "expected double-resume rejection"
          with Invalid_argument _ -> ())
      | None -> fail "no resume captured");
  ignore (K.run k)

let test_channel_mismatched_direction_rejected () =
  (* a process network where a behaviour sends on a channel declared in
     the other direction is rejected statically *)
  let p1 =
    { B.name = "a"; params = []; arrays = []; results = [];
      body = [ B.Send ("c", B.Int 1) ] }
  in
  let p2 =
    { B.name = "b"; params = []; arrays = []; results = [];
      body = [ B.Recv ("x", "c") ] }
  in
  try
    ignore
      (Pn.make
         [ (p1, Pn.Sw); (p2, Pn.Sw) ]
         [ { Pn.cname = "c"; src = "b"; dst = "a"; depth = 0; latency = 0 } ]);
    fail "expected direction mismatch"
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create 7 and b = Rng.create 7 in
  let xs = List.init 50 (fun _ -> Rng.int a 1000) in
  let ys = List.init 50 (fun _ -> Rng.int b 1000) in
  check (Alcotest.list Alcotest.int) "same stream" xs ys;
  let c = Rng.create 8 in
  let zs = List.init 50 (fun _ -> Rng.int c 1000) in
  check Alcotest.bool "different seed" true (xs <> zs)

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  let xs = List.init 20 (fun _ -> Rng.int a 1000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1000) in
  check Alcotest.bool "split streams differ" true (xs <> ys)

let prop_rng_bounds =
  QCheck.Test.make ~name:"rng stays in bounds" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let r = Rng.create seed in
      let v = Rng.int r bound in
      v >= 0 && v < bound)

let prop_rng_int_in =
  QCheck.Test.make ~name:"rng int_in inclusive range" ~count:500
    QCheck.(triple small_int (int_range (-50) 50) (int_range 0 100))
    (fun (seed, lo, extent) ->
      let hi = lo + extent in
      let r = Rng.create seed in
      let v = Rng.int_in r lo hi in
      v >= lo && v <= hi)

let test_rng_shuffle_permutes () =
  let r = Rng.create 3 in
  let a = Array.init 30 Fun.id in
  let orig = Array.copy a in
  Rng.shuffle r a;
  check Alcotest.bool "same multiset" true
    (List.sort compare (Array.to_list a) = Array.to_list orig);
  check Alcotest.bool "actually moved" true (a <> orig)

(* ------------------------------------------------------------------ *)
(* Cost-model invariants (property-based)                              *)
(* ------------------------------------------------------------------ *)

let arb_graph_and_partition =
  QCheck.make
    ~print:(fun (seed, n, _) -> Printf.sprintf "seed=%d n=%d" seed n)
    QCheck.Gen.(
      let* seed = int_range 1 500 in
      let* n = int_range 3 14 in
      let* bits = list_repeat n bool in
      return (seed, n, bits))

let graph_of seed n =
  Tgff.generate
    { Tgff.default_spec with Tgff.seed; n_tasks = n; layers = min 4 n }

let prop_comm_cost_monotone =
  QCheck.Test.make ~name:"latency monotone in communication cost"
    ~count:100 arb_graph_and_partition (fun (seed, n, bits) ->
      let g = graph_of seed n in
      let p = Array.of_list bits in
      let lat c =
        (Cost.evaluate
           ~params:{ Cost.default_params with Cost.comm_cycles_per_word = c }
           g p)
          .Cost.latency
      in
      lat 0 <= lat 8 && lat 8 <= lat 64)

let prop_sharing_never_costs_more =
  QCheck.Test.make ~name:"sharing-aware area <= standalone area"
    ~count:100 arb_graph_and_partition (fun (seed, n, bits) ->
      let g = graph_of seed n in
      let p = Array.of_list bits in
      Cost.area_of_partition g p
      <= Cost.area_of_partition
           ~params:{ Cost.default_params with Cost.sharing = false }
           g p)

let prop_all_hw_not_slower_than_serial_hw =
  QCheck.Test.make ~name:"parallel hw <= serial hw latency" ~count:100
    arb_graph_and_partition (fun (seed, n, bits) ->
      let g = graph_of seed n in
      let p = Array.of_list bits in
      let lat par =
        (Cost.evaluate
           ~params:{ Cost.default_params with Cost.hw_parallel = par }
           g p)
          .Cost.latency
      in
      lat true <= lat false)

let prop_speedup_consistent =
  QCheck.Test.make ~name:"speedup = all_sw / latency" ~count:100
    arb_graph_and_partition (fun (seed, n, bits) ->
      let g = graph_of seed n in
      let e = Cost.evaluate g (Array.of_list bits) in
      abs_float
        (e.Cost.speedup
        -. (float_of_int e.Cost.all_sw_latency /. float_of_int e.Cost.latency))
      < 1e-9)

let prop_shared_bus_never_faster =
  QCheck.Test.make ~name:"shared interconnect never shortens a mapping"
    ~count:60
    QCheck.(pair (int_range 1 200) (int_range 3 8))
    (fun (seed, n) ->
      let g =
        Tgff.generate
          { Tgff.default_spec with Tgff.seed; n_tasks = n; layers = min 3 n;
            deadline_factor = 1.5 }
      in
      let exec =
        Array.map
          (fun (t : T.task) ->
            [| max 1 (t.T.sw_cycles / 2); t.T.sw_cycles |])
          g.T.tasks
      in
      let lib =
        [ { Cosynth.pt_name = "fast"; price = 40 };
          { Cosynth.pt_name = "slow"; price = 10 } ]
      in
      let pb = Cosynth.problem ~comm_cycles_per_word:10 g lib ~exec in
      let pb_bus =
        Cosynth.problem ~comm_cycles_per_word:10
          ~interconnect:Cosynth.Shared_bus g lib ~exec
      in
      let rng = Rng.create seed in
      let pe_set = [ 0; 1; Rng.int rng 2 ] in
      let mapping = Array.init n (fun _ -> Rng.int rng 3) in
      Cosynth.makespan pb_bus ~pe_set ~mapping
      >= Cosynth.makespan pb ~pe_set ~mapping)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "codesign_robustness"
    [
      ( "vcd",
        [
          Alcotest.test_case "records changes" `Quick
            test_vcd_records_changes;
          Alcotest.test_case "dump format" `Quick test_vcd_dump_format;
          Alcotest.test_case "pin bus wires" `Quick test_vcd_on_pin_bus;
          Alcotest.test_case "watcher quiescent, no deadlock" `Quick
            test_vcd_watcher_quiescent_no_deadlock;
          Alcotest.test_case "dumpvars initial values" `Quick
            test_vcd_dumpvars_initial_values;
          Alcotest.test_case "wide value masked" `Quick
            test_vcd_wide_value_masked;
        ] );
      ( "failure_injection",
        [
          Alcotest.test_case "network deadlock detected" `Quick
            test_network_deadlock_detected;
          Alcotest.test_case "deadlock names every blocked process" `Quick
            test_deadlock_names_every_blocked_process;
          Alcotest.test_case "bad store rejected" `Quick
            test_network_trap_surfaces;
          Alcotest.test_case "runtime trap is structured" `Quick
            test_network_trap_is_structured;
          Alcotest.test_case "unmapped address raises" `Quick
            test_unmapped_bus_address_raises;
          Alcotest.test_case "double resume rejected" `Quick
            test_double_resume_rejected;
          Alcotest.test_case "channel direction checked" `Quick
            test_channel_mismatched_direction_rejected;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "split independent" `Quick
            test_rng_split_independent;
          Alcotest.test_case "shuffle permutes" `Quick
            test_rng_shuffle_permutes;
          QCheck_alcotest.to_alcotest prop_rng_bounds;
          QCheck_alcotest.to_alcotest prop_rng_int_in;
        ] );
      ( "cost_properties",
        [
          QCheck_alcotest.to_alcotest prop_comm_cost_monotone;
          QCheck_alcotest.to_alcotest prop_sharing_never_costs_more;
          QCheck_alcotest.to_alcotest prop_all_hw_not_slower_than_serial_hw;
          QCheck_alcotest.to_alcotest prop_speedup_consistent;
          QCheck_alcotest.to_alcotest prop_shared_bus_never_faster;
        ] );
    ]
