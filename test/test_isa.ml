(* Tests for the codesign_isa library: ISA, assembler, ISS, profiler,
   and the Behavior -> assembly code generator (differentially tested
   against the Behavior interpreter). *)

open Codesign_isa
module B = Codesign_ir.Behavior

let check = Alcotest.check
let fail = Alcotest.fail

(* ------------------------------------------------------------------ *)
(* Assembler                                                           *)
(* ------------------------------------------------------------------ *)

let test_assemble_labels () =
  let img =
    Asm.assemble
      [
        Asm.Label "start";
        Asm.Ins (Isa.Li (1, 5));
        Asm.Label "loop";
        Asm.Ins (Isa.Alui (Isa.Sub, 1, 1, 1));
        Asm.Ins (Isa.B (Isa.Ne, 1, 0, "loop"));
        Asm.Ins Isa.Halt;
      ]
  in
  check Alcotest.int "code length" 4 (Array.length img.Asm.code);
  (match img.Asm.code.(2) with
  | Isa.B (Isa.Ne, 1, 0, 1) -> ()
  | _ -> fail "branch target not resolved to index 1");
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "symbols"
    [ ("start", 0); ("loop", 1) ]
    img.Asm.symbols

let test_assemble_errors () =
  (try
     ignore (Asm.assemble [ Asm.Ins (Isa.J "nowhere") ]);
     fail "undefined label"
   with Invalid_argument _ -> ());
  (try
     ignore (Asm.assemble [ Asm.Label "a"; Asm.Label "a" ]);
     fail "duplicate label"
   with Invalid_argument _ -> ());
  try
    ignore (Asm.assemble [ Asm.Ins (Isa.Li (99, 0)) ]);
    fail "bad register"
  with Invalid_argument _ -> ()

let test_label_of () =
  let img =
    Asm.assemble
      [
        Asm.Ins Isa.Nop;
        Asm.Label "a";
        Asm.Ins Isa.Nop;
        Asm.Ins Isa.Nop;
        Asm.Label "b";
        Asm.Ins Isa.Halt;
      ]
  in
  check (Alcotest.option Alcotest.string) "before labels" None
    (Asm.label_of img 0);
  check (Alcotest.option Alcotest.string) "in a" (Some "a")
    (Asm.label_of img 2);
  check (Alcotest.option Alcotest.string) "in b" (Some "b")
    (Asm.label_of img 3)

let test_parse_roundtrip () =
  let src =
    {|
start:
  li r1, 10
  li r2, 0
loop:                 ; accumulate
  add r2, r2, r1      # r2 += r1
  subi r1, r1, 1
  b.ne r1, r0, loop
  sw r2, 100(r0)
  lw r3, 100(r0)
  out 7, r3
  halt
|}
  in
  let items = Asm.parse src in
  let printed = Asm.print items in
  let items2 = Asm.parse printed in
  check Alcotest.bool "roundtrip" true (items = items2);
  let img = Asm.assemble items in
  let cpu = Cpu.create img.Asm.code in
  ignore (Cpu.run cpu);
  check Alcotest.int "sum 10..1" 55 (Cpu.read_mem cpu 100)

let test_parse_errors () =
  let bad s =
    try
      ignore (Asm.parse s);
      fail ("expected parse error for: " ^ s)
    with Invalid_argument _ -> ()
  in
  bad "frobnicate r1, r2, r3";
  bad "li r99, 5";
  bad "add r1, r2";
  bad "lw r1, r2";
  bad "b.zz r1, r2, foo"

let test_parse_custom_and_misc () =
  let items = Asm.parse "cust3 r1, r2, r3\n in r4, 9\n ei\n di\n rti\n nop" in
  check Alcotest.int "count" 6 (List.length items);
  match items with
  | Asm.Ins (Isa.Custom (3, 1, 2, 3)) :: Asm.Ins (Isa.In (4, 9)) :: _ -> ()
  | _ -> fail "custom/in parse"

(* ------------------------------------------------------------------ *)
(* CPU                                                                 *)
(* ------------------------------------------------------------------ *)

let run_src ?env src =
  let img = Asm.assemble (Asm.parse src) in
  let cpu = Cpu.create ?env img.Asm.code in
  let st = Cpu.run cpu in
  (cpu, st)

let test_cpu_arith () =
  let cpu, st =
    run_src
      {|
  li r1, 7
  li r2, 3
  add r3, r1, r2
  sub r4, r1, r2
  mul r5, r1, r2
  div r6, r1, r2
  rem r7, r1, r2
  slt r8, r2, r1
  seq r9, r1, r1
  halt
|}
  in
  check Alcotest.bool "halted" true (st = Cpu.Halted);
  check Alcotest.int "add" 10 (Cpu.reg cpu 3);
  check Alcotest.int "sub" 4 (Cpu.reg cpu 4);
  check Alcotest.int "mul" 21 (Cpu.reg cpu 5);
  check Alcotest.int "div" 2 (Cpu.reg cpu 6);
  check Alcotest.int "rem" 1 (Cpu.reg cpu 7);
  check Alcotest.int "slt" 1 (Cpu.reg cpu 8);
  check Alcotest.int "seq" 1 (Cpu.reg cpu 9)

let test_cpu_div_by_zero () =
  let cpu, st = run_src "li r1, 5\n div r2, r1, r0\n rem r3, r1, r0\n halt" in
  check Alcotest.bool "halted" true (st = Cpu.Halted);
  check Alcotest.int "div0" 0 (Cpu.reg cpu 2);
  check Alcotest.int "rem0" 0 (Cpu.reg cpu 3)

let test_cpu_r0_hardwired () =
  let cpu, _ = run_src "li r0, 42\n add r1, r0, r0\n halt" in
  check Alcotest.int "r0 stays 0" 0 (Cpu.reg cpu 0);
  check Alcotest.int "r1" 0 (Cpu.reg cpu 1)

let test_cpu_memory () =
  let cpu, _ =
    run_src "li r1, 123\n li r2, 500\n sw r1, 8(r2)\n lw r3, 8(r2)\n halt"
  in
  check Alcotest.int "roundtrip" 123 (Cpu.reg cpu 3);
  check Alcotest.int "mem" 123 (Cpu.read_mem cpu 508)

let test_cpu_mem_trap () =
  let _, st = run_src "li r1, -5\n lw r2, 0(r1)\n halt" in
  match st with
  | Cpu.Trapped _ -> ()
  | _ -> fail "expected trap on negative address"

let test_cpu_pc_trap () =
  let _, st = run_src "j end\nend:" in
  (* jump to index past the last instruction *)
  match st with Cpu.Trapped _ -> () | _ -> fail "expected pc trap"

let test_cpu_fuel () =
  let img = Asm.assemble (Asm.parse "spin:\n j spin") in
  let cpu = Cpu.create img.Asm.code in
  match Cpu.run ~fuel:100 cpu with
  | Cpu.Trapped msg ->
      check Alcotest.bool "fuel message" true (msg = "fuel exhausted")
  | _ -> fail "expected fuel trap"

let test_cpu_cycles () =
  (* li(1) + mul(3) + lw(2) + sw(2) + halt(1) = 9 *)
  let cpu, _ =
    run_src "li r1, 4\n mul r2, r1, r1\n sw r2, 50(r0)\n lw r3, 50(r0)\n halt"
  in
  check Alcotest.int "cycles" 9 (Cpu.cycles cpu);
  check Alcotest.int "instret" 5 (Cpu.instret cpu)

let test_cpu_taken_branch_penalty () =
  (* taken branch costs 2, untaken 1 *)
  let cpu1, _ = run_src "li r1, 1\n b.eq r1, r0, skip\nskip:\n halt" in
  let cpu2, _ = run_src "li r1, 0\n b.eq r1, r0, skip\nskip:\n halt" in
  check Alcotest.int "untaken" 3 (Cpu.cycles cpu1);
  check Alcotest.int "taken" 4 (Cpu.cycles cpu2)

let test_cpu_jal_jr () =
  let cpu, _ =
    run_src
      {|
  jal r31, sub
  sw r1, 10(r0)
  halt
sub:
  li r1, 77
  jr r31
|}
  in
  check Alcotest.int "returned" 77 (Cpu.read_mem cpu 10)

let test_cpu_ports () =
  let log = ref [] in
  let env =
    {
      Cpu.default_env with
      Cpu.port_in = (fun p -> p * 2);
      port_out = (fun p v -> log := (p, v) :: !log);
    }
  in
  let cpu, _ = run_src ~env "in r1, 21\n out 5, r1\n halt" in
  check Alcotest.int "in" 42 (Cpu.reg cpu 1);
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "out" [ (5, 42) ] !log

let test_cpu_custom () =
  let env =
    {
      Cpu.default_env with
      Cpu.custom = (fun ext _old a b -> if ext = 2 then (a * b) + 1 else 0);
      custom_latency = (fun _ -> 4);
    }
  in
  let cpu, _ = run_src ~env "li r1, 6\n li r2, 7\n cust2 r3, r1, r2\n halt" in
  check Alcotest.int "custom result" 43 (Cpu.reg cpu 3);
  (* li + li + cust(4) + halt = 1+1+4+1 *)
  check Alcotest.int "custom latency" 7 (Cpu.cycles cpu)

let test_cpu_interrupt () =
  (* Vector at index 1 (default).  Main enables interrupts then spins;
     the ISR writes a flag and returns; main sees the flag and halts. *)
  let src =
    {|
  j main
isr:
  li r5, 1
  rti
main:
  ei
spin:
  b.eq r5, r0, spin
  halt
|}
  in
  let img = Asm.assemble (Asm.parse src) in
  let cpu = Cpu.create img.Asm.code in
  (* run some steps, then raise the line *)
  for _ = 1 to 10 do
    ignore (Cpu.step cpu)
  done;
  check Alcotest.bool "still spinning" true (Cpu.status cpu = Cpu.Running);
  Cpu.set_irq cpu true;
  ignore (Cpu.step cpu);
  (* interrupt entry *)
  Cpu.set_irq cpu false;
  let st = Cpu.run cpu in
  check Alcotest.bool "halted after isr" true (st = Cpu.Halted);
  check Alcotest.int "isr ran" 1 (Cpu.reg cpu 5)

let test_cpu_irq_disabled_ignored () =
  let src = "li r1, 5\nspin:\n subi r1, r1, 1\n b.ne r1, r0, spin\n halt" in
  let img = Asm.assemble (Asm.parse src) in
  let cpu = Cpu.create img.Asm.code in
  Cpu.set_irq cpu true;
  (* interrupts never enabled: must run to completion *)
  check Alcotest.bool "halted" true (Cpu.run cpu = Cpu.Halted)

let test_cpu_reset () =
  let cpu, _ = run_src "li r1, 9\n sw r1, 30(r0)\n halt" in
  Cpu.reset cpu;
  check Alcotest.int "regs cleared" 0 (Cpu.reg cpu 1);
  check Alcotest.int "pc cleared" 0 (Cpu.pc cpu);
  check Alcotest.int "cycles cleared" 0 (Cpu.cycles cpu);
  check Alcotest.int "memory preserved" 9 (Cpu.read_mem cpu 30);
  check Alcotest.bool "running again" true (Cpu.status cpu = Cpu.Running)

let test_cpu_reset_clears_irq_and_retire () =
  (* regression: a request line latched (and a retirement callback
     installed) during one run must not leak into the next — a reset
     CPU takes no interrupt until set_irq drives the line again *)
  let src =
    {|
  j main
isr:
  li r5, 1
  rti
main:
  ei
  nop
  nop
  halt
|}
  in
  let img = Asm.assemble (Asm.parse src) in
  let cpu = Cpu.create img.Asm.code in
  let retired = ref 0 in
  Cpu.on_retire cpu (fun ~pc:_ ~cycles:_ -> incr retired);
  (* first run: latch the level-sensitive line high and step into the
     ISR, abandoning the run mid-flight with the line still high *)
  Cpu.set_irq cpu true;
  for _ = 1 to 10 do
    ignore (Cpu.step cpu)
  done;
  check Alcotest.int "interrupt taken while line high" 1 (Cpu.reg cpu 5);
  check Alcotest.bool "callback fired" true (!retired > 0);
  Cpu.reset cpu;
  retired := 0;
  check Alcotest.bool "second run halts" true (Cpu.run cpu = Cpu.Halted);
  check Alcotest.int "no stale interrupt after reset" 0 (Cpu.reg cpu 5);
  check Alcotest.int "stale retire callback removed" 0 !retired;
  (* the line still works when driven again after the reset *)
  Cpu.reset cpu;
  Cpu.set_irq cpu true;
  for _ = 1 to 10 do
    ignore (Cpu.step cpu)
  done;
  check Alcotest.int "re-driven line interrupts" 1 (Cpu.reg cpu 5)

(* ------------------------------------------------------------------ *)
(* Profiler                                                            *)
(* ------------------------------------------------------------------ *)

let test_profiler_hot_loop () =
  let src =
    {|
setup:
  li r1, 100
  li r2, 0
hot:
  add r2, r2, r1
  subi r1, r1, 1
  b.ne r1, r0, hot
cold:
  sw r2, 10(r0)
  halt
|}
  in
  let img = Asm.assemble (Asm.parse src) in
  let cpu = Cpu.create img.Asm.code in
  let prof = Profiler.attach cpu img in
  ignore (Cpu.run cpu);
  check Alcotest.int "totals agree" (Cpu.cycles cpu)
    (Profiler.total_cycles prof);
  (match Profiler.by_label prof with
  | ("hot", _) :: _ -> ()
  | (l, _) :: _ -> fail ("hottest is " ^ l)
  | [] -> fail "empty profile");
  let regions = Profiler.hot_regions ~top:1 prof in
  match regions with
  | [ ("hot", c, f) ] ->
      check Alcotest.bool "dominant" true (f > 0.9);
      check Alcotest.bool "cycles positive" true (c > 300)
  | _ -> fail "expected single hot region"

let test_profiler_entry_region () =
  let img = Asm.assemble (Asm.parse "li r1, 1\n halt") in
  let cpu = Cpu.create img.Asm.code in
  let prof = Profiler.attach cpu img in
  ignore (Cpu.run cpu);
  match Profiler.by_label prof with
  | [ ("<entry>", 2) ] -> ()
  | _ -> fail "expected <entry> aggregation"

let irq_src =
  {|
  j main
isr:
  li r5, 1
  rti
main:
  ei
spin:
  b.eq r5, r0, spin
  halt
|}

(* Regression: interrupt entry burns 2 cycles but used to bypass the
   retirement callback, so [Profiler.total_cycles] drifted below
   [Cpu.cycles] by 2 per interrupt — exactly the kind of silent
   accounting skew a block-compiled tier would have baked in.  The
   entry now reports to the callback (attributed to the interrupted
   pc), so the two counters track exactly on IRQ workloads, under both
   run paths. *)
let test_profiler_irq_total_cycles () =
  let run_with runner =
    let img = Asm.assemble (Asm.parse irq_src) in
    let cpu = Cpu.create img.Asm.code in
    let prof = Profiler.attach cpu img in
    for _ = 1 to 10 do
      ignore (Cpu.step cpu)
    done;
    Cpu.set_irq cpu true;
    ignore (Cpu.step cpu);
    Cpu.set_irq cpu false;
    runner cpu;
    check Alcotest.bool "halted" true (Cpu.status cpu = Cpu.Halted);
    check Alcotest.int "isr ran" 1 (Cpu.reg cpu 5);
    check Alcotest.int "profiler total = cpu cycles" (Cpu.cycles cpu)
      (Profiler.total_cycles prof)
  in
  run_with (fun cpu -> ignore (Cpu.run cpu));
  run_with (fun cpu -> ignore (Cpu.run_blocks cpu ~fuel:100_000))

(* Regression: [Halt] used to advance pc past the halt instruction; it
   now stays on it, so a halted CPU's pc names the halt site (and the
   block tier, snapshots and fuzz state comparisons all agree on it). *)
let test_cpu_halt_pc () =
  let img = Asm.assemble (Asm.parse "li r1, 1\n li r2, 2\n halt") in
  let cpu_step = Cpu.create img.Asm.code in
  ignore (Cpu.run cpu_step);
  check Alcotest.int "pc stays on halt (step)" 2 (Cpu.pc cpu_step);
  let cpu_blocks = Cpu.create img.Asm.code in
  ignore (Cpu.run_blocks cpu_blocks ~fuel:100);
  check Alcotest.int "pc stays on halt (blocks)" 2 (Cpu.pc cpu_blocks)

(* One fuel step = one retired instruction OR one interrupt entry: a
   budget that exhausts exactly at the entry boundary performs the
   entry alone — 2 cycles, nothing retired, pc at the vector — under
   both tiers. *)
let test_cpu_fuel_at_irq_boundary () =
  let with_tier runner =
    let img = Asm.assemble (Asm.parse irq_src) in
    let cpu = Cpu.create img.Asm.code in
    Cpu.set_irq cpu true;
    (* j + ei: two instructions, line already high but masked *)
    ignore (Cpu.run_fast cpu ~fuel:2);
    check Alcotest.int "prelude retired" 2 (Cpu.instret cpu);
    let cycles_before = Cpu.cycles cpu in
    let consumed = runner cpu 1 in
    check Alcotest.int "one fuel step consumed" 1 consumed;
    check Alcotest.int "entry cycles charged" (cycles_before + 2)
      (Cpu.cycles cpu);
    check Alcotest.int "nothing retired by the entry" 2 (Cpu.instret cpu);
    check Alcotest.int "vectored" 1 (Cpu.pc cpu)
  in
  with_tier (fun cpu fuel -> Cpu.run_fast cpu ~fuel);
  with_tier (fun cpu fuel -> Cpu.run_blocks cpu ~fuel)

(* ------------------------------------------------------------------ *)
(* Codegen: differential tests against the Behavior interpreter        *)
(* ------------------------------------------------------------------ *)

let differential ?(bindings = []) proc =
  let expected = B.run proc bindings in
  let actual, _cpu = Codegen.run_compiled proc bindings in
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    ("compiled = interpreted: " ^ proc.B.name)
    expected actual

let test_cg_arith () =
  differential
    ~bindings:[ ("a", 13); ("b", 5) ]
    {
      B.name = "arith";
      params = [ "a"; "b" ];
      arrays = [];
      results = [ "s"; "d"; "m"; "q"; "r"; "lt"; "le"; "eq"; "ne" ];
      body =
        [
          B.Assign ("s", B.Bin (B.Add, B.Var "a", B.Var "b"));
          B.Assign ("d", B.Bin (B.Sub, B.Var "a", B.Var "b"));
          B.Assign ("m", B.Bin (B.Mul, B.Var "a", B.Var "b"));
          B.Assign ("q", B.Bin (B.Div, B.Var "a", B.Var "b"));
          B.Assign ("r", B.Bin (B.Rem, B.Var "a", B.Var "b"));
          B.Assign ("lt", B.Bin (B.Lt, B.Var "a", B.Var "b"));
          B.Assign ("le", B.Bin (B.Le, B.Var "a", B.Var "b"));
          B.Assign ("eq", B.Bin (B.Eq, B.Var "a", B.Var "b"));
          B.Assign ("ne", B.Bin (B.Ne, B.Var "a", B.Var "b"));
        ];
    }

let test_cg_bitwise_neg_not () =
  differential
    ~bindings:[ ("a", 0b1100); ("b", 0b1010) ]
    {
      B.name = "bits";
      params = [ "a"; "b" ];
      arrays = [];
      results = [ "x"; "y"; "z"; "sl"; "sr"; "n"; "nt"; "nt0" ];
      body =
        [
          B.Assign ("x", B.Bin (B.And, B.Var "a", B.Var "b"));
          B.Assign ("y", B.Bin (B.Or, B.Var "a", B.Var "b"));
          B.Assign ("z", B.Bin (B.Xor, B.Var "a", B.Var "b"));
          B.Assign ("sl", B.Bin (B.Shl, B.Var "a", B.Int 2));
          B.Assign ("sr", B.Bin (B.Shr, B.Var "a", B.Int 1));
          B.Assign ("n", B.Neg (B.Var "a"));
          B.Assign ("nt", B.Not (B.Var "a"));
          B.Assign ("nt0", B.Not (B.Int 0));
        ];
    }

let test_cg_control () =
  differential
    ~bindings:[ ("n", 7) ]
    {
      B.name = "ctl";
      params = [ "n" ];
      arrays = [];
      results = [ "sum"; "fact"; "branchy" ];
      body =
        [
          B.Assign ("sum", B.Int 0);
          B.For
            ( "i",
              B.Int 0,
              B.Var "n",
              [
                B.Assign ("sum", B.Bin (B.Add, B.Var "sum", B.Var "i"));
              ] );
          B.Assign ("fact", B.Int 1);
          B.Assign ("k", B.Var "n");
          B.While
            ( B.Bin (B.Lt, B.Int 1, B.Var "k"),
              [
                B.Assign ("fact", B.Bin (B.Mul, B.Var "fact", B.Var "k"));
                B.Assign ("k", B.Bin (B.Sub, B.Var "k", B.Int 1));
              ],
              6 );
          B.If
            ( B.Bin (B.Lt, B.Var "sum", B.Var "fact"),
              [ B.Assign ("branchy", B.Int 1) ],
              [ B.Assign ("branchy", B.Int 2) ] );
        ];
    }

let test_cg_arrays () =
  differential
    {
      B.name = "arr";
      params = [];
      arrays = [ ("t", 8) ];
      results = [ "acc" ];
      body =
        [
          B.For
            ( "i",
              B.Int 0,
              B.Int 8,
              [
                B.Store
                  ("t", B.Var "i", B.Bin (B.Mul, B.Var "i", B.Var "i"));
              ] );
          B.Assign ("acc", B.Int 0);
          B.For
            ( "i",
              B.Int 0,
              B.Int 8,
              [
                B.Assign
                  ("acc", B.Bin (B.Add, B.Var "acc", B.Idx ("t", B.Var "i")));
              ] );
        ];
    }

let test_cg_array_bindings () =
  differential
    ~bindings:[ ("x[0]", 5); ("x[1]", 7); ("x[2]", 11) ]
    {
      B.name = "arrbind";
      params = [];
      arrays = [ ("x", 3) ];
      results = [ "s" ];
      body =
        [
          B.Assign
            ( "s",
              B.Bin
                ( B.Add,
                  B.Idx ("x", B.Int 0),
                  B.Bin (B.Add, B.Idx ("x", B.Int 1), B.Idx ("x", B.Int 2)) )
            );
        ];
    }

let test_cg_ports () =
  let proc =
    {
      B.name = "ports";
      params = [];
      arrays = [];
      results = [];
      body =
        [
          B.PortIn ("x", 4);
          B.PortOut (2, B.Bin (B.Mul, B.Var "x", B.Int 3));
        ];
    }
  in
  let out = ref [] in
  let env =
    {
      Cpu.default_env with
      Cpu.port_in = (fun p -> p + 10);
      port_out = (fun p v -> out := (p, v) :: !out);
    }
  in
  let _, _ = Codegen.run_compiled ~env proc [] in
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "port writes" [ (2, 42) ] !out

let test_cg_channels_as_ports () =
  let proc =
    {
      B.name = "chan";
      params = [];
      arrays = [];
      results = [ "v" ];
      body = [ B.Recv ("v", "c0"); B.Send ("c1", B.Var "v") ];
    }
  in
  let items, lay = Codegen.compile ~chan_ports:[ ("c0", 8); ("c1", 9) ] proc in
  let img = Asm.assemble items in
  let sent = ref [] in
  let env =
    {
      Cpu.default_env with
      Cpu.port_in = (fun p -> if p = 8 then 55 else 0);
      port_out = (fun p v -> sent := (p, v) :: !sent);
    }
  in
  let cpu = Cpu.create ~env img.Asm.code in
  ignore (Cpu.run cpu);
  check Alcotest.int "recv" 55 (Codegen.result lay cpu "v");
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "send" [ (9, 55) ] !sent

let test_cg_missing_chan_port () =
  let proc =
    {
      B.name = "nochan";
      params = [];
      arrays = [];
      results = [];
      body = [ B.Send ("c9", B.Int 1) ];
    }
  in
  try
    ignore (Codegen.compile proc);
    fail "expected missing channel mapping error"
  with Invalid_argument _ -> ()

let test_cg_too_deep () =
  (* build a right-leaning expression 25 deep *)
  let rec deep n = if n = 0 then B.Int 1 else B.Bin (B.Add, B.Int 1, deep (n - 1)) in
  let proc =
    {
      B.name = "deep";
      params = [];
      arrays = [];
      results = [ "x" ];
      body = [ B.Assign ("x", deep 25) ];
    }
  in
  try
    ignore (Codegen.compile proc);
    fail "expected depth error"
  with Invalid_argument _ -> ()

let test_cg_layout () =
  let proc =
    {
      B.name = "lay";
      params = [ "a" ];
      arrays = [ ("t", 10); ("u", 5) ];
      results = [];
      body = [ B.Assign ("b", B.Var "a") ];
    }
  in
  let lay = Codegen.layout_of proc in
  check Alcotest.int "base" Codegen.default_base lay.Codegen.base;
  (* two scalars + 15 array words *)
  check Alcotest.int "data words" 17 lay.Codegen.data_words;
  check Alcotest.bool "arrays after scalars" true
    (List.assoc "t" lay.Codegen.arr_addr
    > List.assoc "b" lay.Codegen.var_addr)

(* qcheck differential: random straight-line arithmetic programs give the
   same results interpreted and compiled. *)
let gen_expr_arb =
  (* depth-bounded expression over vars a,b and small ints *)
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        map (fun i -> B.Int i) (int_range (-20) 20);
        oneofl [ B.Var "a"; B.Var "b" ];
      ]
  in
  let op =
    oneofl
      [ B.Add; B.Sub; B.Mul; B.Div; B.Rem; B.And; B.Or; B.Xor;
        B.Lt; B.Le; B.Eq; B.Ne ]
  in
  let rec expr n =
    if n = 0 then leaf
    else
      frequency
        [
          (1, leaf);
          (3, map3 (fun o l r -> B.Bin (o, l, r)) op (expr (n - 1)) (expr (n - 1)));
          (1, map (fun e -> B.Neg e) (expr (n - 1)));
          (1, map (fun e -> B.Not e) (expr (n - 1)));
        ]
  in
  expr 4

let prop_codegen_matches_interpreter =
  QCheck.Test.make ~name:"codegen matches interpreter on random exprs"
    ~count:200
    (QCheck.make
       ~print:(fun (e, a, b) ->
         Format.asprintf "a=%d b=%d e=%a" a b B.pp_expr e)
       QCheck.Gen.(
         triple gen_expr_arb (int_range (-100) 100) (int_range (-100) 100)))
    (fun (e, a, b) ->
      let proc =
        {
          B.name = "rand";
          params = [ "a"; "b" ];
          arrays = [];
          results = [ "x" ];
          body = [ B.Assign ("x", e) ];
        }
      in
      let bindings = [ ("a", a); ("b", b) ] in
      let expected = B.run proc bindings in
      let actual, _ = Codegen.run_compiled proc bindings in
      expected = actual)

(* property: parse ∘ print is the identity on arbitrary item lists with
   labels interleaved between instructions (not only appended at the
   end), over every opcode form — all branch conditions, lw/sw offsets,
   custN — and print is a fixpoint through a second pass *)
let gen_asm_items : Asm.item list QCheck.Gen.t =
  let open QCheck.Gen in
  let reg = int_bound 31 in
  let imm = oneof [ int_range (-1024) 1023; int_range (-100000) 100000 ] in
  let lab = map (Printf.sprintf "L%d") (int_bound 30) in
  let aluop =
    oneofl
      [ Isa.Add; Isa.Sub; Isa.Mul; Isa.Div; Isa.Rem; Isa.And; Isa.Or;
        Isa.Xor; Isa.Shl; Isa.Shr; Isa.Slt; Isa.Seq ]
  in
  let cond = oneofl [ Isa.Eq; Isa.Ne; Isa.Lt; Isa.Ge ] in
  let ins =
    oneof
      [
        map3 (fun o (a, b) c -> Isa.Alu (o, a, b, c)) aluop (pair reg reg) reg;
        map3 (fun o (a, b) i -> Isa.Alui (o, a, b, i)) aluop (pair reg reg)
          imm;
        map2 (fun r i -> Isa.Li (r, i)) reg imm;
        map3 (fun a b i -> Isa.Lw (a, b, i)) reg reg imm;
        map3 (fun a b i -> Isa.Sw (a, b, i)) reg reg imm;
        map3 (fun c (a, b) t -> Isa.B (c, a, b, t)) cond (pair reg reg) lab;
        map (fun t -> Isa.J t) lab;
        map2 (fun r t -> Isa.Jal (r, t)) reg lab;
        map (fun r -> Isa.Jr r) reg;
        map2 (fun r p -> Isa.In (r, p)) reg (int_bound 5000);
        map2 (fun p r -> Isa.Out (p, r)) (int_bound 5000) reg;
        map3
          (fun e (a, b) c -> Isa.Custom (e, a, b, c))
          (int_bound 2000) (pair reg reg) reg;
        oneofl [ Isa.Ei; Isa.Di; Isa.Rti; Isa.Nop; Isa.Halt ];
      ]
  in
  list_size (int_range 0 40)
    (frequency
       [
         (1, map (fun l -> Asm.Label l) lab);
         (5, map (fun i -> Asm.Ins i) ins);
       ])

let prop_asm_interleaved_roundtrip =
  QCheck.Test.make ~name:"asm print/parse identity, interleaved labels"
    ~count:300
    (QCheck.make ~print:Asm.print gen_asm_items)
    (fun items ->
      let printed = Asm.print items in
      let reparsed = Asm.parse printed in
      reparsed = items && Asm.print reparsed = printed)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "codesign_isa"
    [
      ( "asm",
        [
          Alcotest.test_case "labels" `Quick test_assemble_labels;
          Alcotest.test_case "errors" `Quick test_assemble_errors;
          Alcotest.test_case "label_of" `Quick test_label_of;
          Alcotest.test_case "parse roundtrip" `Quick test_parse_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "parse custom/misc" `Quick
            test_parse_custom_and_misc;
          QCheck_alcotest.to_alcotest prop_asm_interleaved_roundtrip;
        ] );
      ( "cpu",
        [
          Alcotest.test_case "arithmetic" `Quick test_cpu_arith;
          Alcotest.test_case "div by zero" `Quick test_cpu_div_by_zero;
          Alcotest.test_case "r0 hardwired" `Quick test_cpu_r0_hardwired;
          Alcotest.test_case "memory" `Quick test_cpu_memory;
          Alcotest.test_case "mem trap" `Quick test_cpu_mem_trap;
          Alcotest.test_case "pc trap" `Quick test_cpu_pc_trap;
          Alcotest.test_case "fuel" `Quick test_cpu_fuel;
          Alcotest.test_case "cycle counting" `Quick test_cpu_cycles;
          Alcotest.test_case "branch penalty" `Quick
            test_cpu_taken_branch_penalty;
          Alcotest.test_case "jal/jr" `Quick test_cpu_jal_jr;
          Alcotest.test_case "ports" `Quick test_cpu_ports;
          Alcotest.test_case "custom instruction" `Quick test_cpu_custom;
          Alcotest.test_case "interrupt" `Quick test_cpu_interrupt;
          Alcotest.test_case "irq disabled ignored" `Quick
            test_cpu_irq_disabled_ignored;
          Alcotest.test_case "reset" `Quick test_cpu_reset;
          Alcotest.test_case "reset clears irq line + retire cb" `Quick
            test_cpu_reset_clears_irq_and_retire;
        ] );
      ( "profiler",
        [
          Alcotest.test_case "hot loop" `Quick test_profiler_hot_loop;
          Alcotest.test_case "entry region" `Quick test_profiler_entry_region;
          Alcotest.test_case "irq entry keeps totals exact" `Quick
            test_profiler_irq_total_cycles;
          Alcotest.test_case "halt keeps pc on the halt site" `Quick
            test_cpu_halt_pc;
          Alcotest.test_case "fuel exhausts exactly at irq entry" `Quick
            test_cpu_fuel_at_irq_boundary;
        ] );
      ( "codegen",
        [
          Alcotest.test_case "arithmetic" `Quick test_cg_arith;
          Alcotest.test_case "bitwise/neg/not" `Quick test_cg_bitwise_neg_not;
          Alcotest.test_case "control flow" `Quick test_cg_control;
          Alcotest.test_case "arrays" `Quick test_cg_arrays;
          Alcotest.test_case "array bindings" `Quick test_cg_array_bindings;
          Alcotest.test_case "ports" `Quick test_cg_ports;
          Alcotest.test_case "channels as ports" `Quick
            test_cg_channels_as_ports;
          Alcotest.test_case "missing channel port" `Quick
            test_cg_missing_chan_port;
          Alcotest.test_case "expression too deep" `Quick test_cg_too_deep;
          Alcotest.test_case "layout" `Quick test_cg_layout;
          QCheck_alcotest.to_alcotest prop_codegen_matches_interpreter;
        ] );
    ]
