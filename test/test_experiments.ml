(* Smoke + shape tests for the experiment drivers: every EXP runs in
   quick mode, produces a non-empty table, and its qualitative claim
   (the paper's "shape") holds. *)

open Codesign_experiments

let check = Alcotest.check

let non_empty name s =
  check Alcotest.bool (name ^ " produces a table") true
    (String.length s > 80 && String.contains s '|')

let test_run name f () = non_empty name (f ~quick:true ())
let test_shape name f () = check Alcotest.bool (name ^ " shape") true (f ())

let () =
  Alcotest.run "codesign_experiments"
    [
      ( "tables",
        [
          Alcotest.test_case "exp1 runs" `Quick
            (test_run "exp1" (fun ~quick () -> Exp_fig1.run ~quick ()));
          Alcotest.test_case "exp2 runs" `Quick
            (test_run "exp2" (fun ~quick () -> Exp_fig2.run ~quick ()));
          Alcotest.test_case "exp3 runs" `Quick
            (test_run "exp3" (fun ~quick () -> Exp_fig3.run ~quick ()));
          Alcotest.test_case "exp3m runs" `Quick
            (test_run "exp3m" (fun ~quick () -> Exp_fig3m.run ~quick ()));
          Alcotest.test_case "exp4 runs" `Quick
            (test_run "exp4" (fun ~quick () -> Exp_fig4.run ~quick ()));
          Alcotest.test_case "exp5 runs" `Quick
            (test_run "exp5" (fun ~quick () -> Exp_fig5.run ~quick ()));
          Alcotest.test_case "exp6 runs" `Quick
            (test_run "exp6" (fun ~quick () -> Exp_fig6.run ~quick ()));
          Alcotest.test_case "exp7 runs" `Quick
            (test_run "exp7" (fun ~quick () -> Exp_fig7.run ~quick ()));
          Alcotest.test_case "exp8 runs" `Quick
            (test_run "exp8" (fun ~quick () -> Exp_fig8.run ~quick ()));
          Alcotest.test_case "exp9 runs" `Quick
            (test_run "exp9" (fun ~quick () -> Exp_fig9.run ~quick ()));
          Alcotest.test_case "exp10 runs" `Quick
            (test_run "exp10" (fun ~quick () -> Exp_criteria.run ~quick ()));
          Alcotest.test_case "expA runs" `Quick
            (test_run "expA" (fun ~quick () -> Exp_ablation.run ~quick ()));
          Alcotest.test_case "expF runs" `Quick
            (test_run "expF" (fun ~quick () -> Exp_fault.run ~quick ()));
        ] );
      ( "shapes",
        [
          Alcotest.test_case "exp1 classification agrees with paper" `Quick
            (test_shape "exp1" Exp_fig1.all_agree);
          Alcotest.test_case "exp2 fig-2 containment" `Quick
            (test_shape "exp2" Exp_fig2.containment_holds);
          Alcotest.test_case "exp3 ladder monotone" `Quick
            (test_shape "exp3" (fun () -> Exp_fig3.shape_holds ()));
          Alcotest.test_case "exp3m mixed grid invariants" `Quick
            (test_shape "exp3m" (fun () -> Exp_fig3m.shape_holds ()));
          Alcotest.test_case "exp4 polled vs irq" `Quick
            (test_shape "exp4" (fun () -> Exp_fig4.shape_holds ()));
          Alcotest.test_case "exp5 exact vs heuristic" `Quick
            (test_shape "exp5" (fun () -> Exp_fig5.shape_holds ()));
          Alcotest.test_case "exp6 diminishing returns" `Quick
            (test_shape "exp6" (fun () -> Exp_fig6.shape_holds ()));
          Alcotest.test_case "exp7 static vs dynamic" `Quick
            (test_shape "exp7" (fun () -> Exp_fig7.shape_holds ()));
          Alcotest.test_case "exp8 partitioning shapes" `Quick
            (test_shape "exp8" (fun () -> Exp_fig8.shape_holds ()));
          Alcotest.test_case "exp9 thread scaling" `Quick
            (test_shape "exp9" (fun () -> Exp_fig9.shape_holds ()));
          Alcotest.test_case "exp10 §5 prose facts" `Quick
            (test_shape "exp10" (fun () -> Exp_criteria.shape_holds ()));
          Alcotest.test_case "expA ablation shapes" `Quick
            (test_shape "expA" (fun () -> Exp_ablation.shape_holds ()));
          Alcotest.test_case "expF recovery strictly improves up the ladder"
            `Quick
            (test_shape "expF" (fun () -> Exp_fault.shape_holds ()));
        ] );
    ]
