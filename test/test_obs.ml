(* Tests for the codesign_obs measurement library: JSON emit/parse,
   checksums, and the BENCH_results.json report schema. *)

module Obs = Codesign_obs
module Json = Codesign_obs.Json
module Registry = Codesign_experiments.Registry

let check = Alcotest.check
let fail = Alcotest.fail

(* ------------------------------------------------------------------ *)
(* Json                                                                *)
(* ------------------------------------------------------------------ *)

let sample =
  Json.Obj
    [
      ("null", Json.Null);
      ("flag", Json.Bool true);
      ("n", Json.Int (-42));
      ("x", Json.Float 1.5);
      ("s", Json.Str "quote \" backslash \\ newline \n tab \t done");
      ("items", Json.List [ Json.Int 1; Json.Int 2; Json.Int 3 ]);
      ("empty_list", Json.List []);
      ("empty_obj", Json.Obj []);
      ("nested", Json.Obj [ ("k", Json.List [ Json.Str "v" ]) ]);
    ]

let test_json_roundtrip () =
  match Json.parse (Json.to_string sample) with
  | Ok v -> if v <> sample then fail "compact round trip changed the value"
  | Error e -> fail ("compact parse failed: " ^ e)

let test_json_roundtrip_pretty () =
  match Json.parse (Json.to_string ~pretty:true sample) with
  | Ok v -> if v <> sample then fail "pretty round trip changed the value"
  | Error e -> fail ("pretty parse failed: " ^ e)

let test_json_literals () =
  check Alcotest.string "compact obj" "{\"a\":1,\"b\":[true,null]}"
    (Json.to_string
       (Json.Obj
          [ ("a", Json.Int 1);
            ("b", Json.List [ Json.Bool true; Json.Null ]) ]));
  check Alcotest.string "float gets a point" "1.0"
    (Json.to_string (Json.Float 1.0));
  check Alcotest.string "control chars escaped" "\"\\u0001\""
    (Json.to_string (Json.Str "\001"))

let test_json_nonfinite_rejected () =
  try
    ignore (Json.to_string (Json.Float Float.nan));
    fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_json_parse_numbers () =
  (match Json.parse "[0,-7,2.5,1e3,-0.125]" with
  | Ok
      (Json.List
        [ Json.Int 0; Json.Int (-7); Json.Float 2.5; Json.Float 1000.;
          Json.Float (-0.125) ]) ->
      ()
  | Ok _ -> fail "wrong number classification"
  | Error e -> fail e);
  match Json.parse "18446744073709551616" with
  | Error _ -> () (* out of int range: a clean error, not a crash *)
  | Ok _ -> fail "expected overflow error"

let test_json_parse_escapes () =
  match Json.parse "\"a\\u0041\\n\\\\\"" with
  | Ok (Json.Str s) -> check Alcotest.string "unescaped" "aA\n\\" s
  | Ok _ -> fail "not a string"
  | Error e -> fail e

let test_json_parse_errors () =
  let bad s =
    match Json.parse s with
    | Error _ -> ()
    | Ok _ -> fail ("accepted malformed input: " ^ s)
  in
  bad "";
  bad "{";
  bad "[1,]";
  bad "{\"a\" 1}";
  bad "nul";
  bad "\"unterminated";
  bad "42 43" (* trailing input *)

let test_json_accessors () =
  let j = Json.Obj [ ("a", Json.Int 3); ("b", Json.Str "x") ] in
  check (Alcotest.option Alcotest.int) "member int" (Some 3)
    (Option.bind (Json.member "a" j) Json.to_int);
  check (Alcotest.option Alcotest.string) "member str" (Some "x")
    (Option.bind (Json.member "b" j) Json.to_str);
  check (Alcotest.option Alcotest.int) "missing" None
    (Option.bind (Json.member "zz" j) Json.to_int);
  check
    (Alcotest.option (Alcotest.float 1e-9))
    "int widens to float" (Some 3.0)
    (Option.bind (Json.member "a" j) Json.to_float)

(* ------------------------------------------------------------------ *)
(* Checksum                                                            *)
(* ------------------------------------------------------------------ *)

let test_checksum_vectors () =
  (* standard FNV-1a 64 test vectors *)
  check Alcotest.string "empty" "cbf29ce484222325" (Obs.Checksum.of_string "");
  check Alcotest.string "a" "af63dc4c8601ec8c" (Obs.Checksum.of_string "a");
  check Alcotest.string "foobar" "85944171f73967e8"
    (Obs.Checksum.of_string "foobar")

let test_checksum_distinguishes () =
  check Alcotest.bool "different tables differ" false
    (Obs.Checksum.of_string "table v1" = Obs.Checksum.of_string "table v2")

(* ------------------------------------------------------------------ *)
(* Clock                                                               *)
(* ------------------------------------------------------------------ *)

let test_clock_monotonic () =
  let a = Obs.Clock.now_ns () in
  let b = Obs.Clock.now_ns () in
  check Alcotest.bool "nondecreasing" true (Int64.compare b a >= 0);
  let (), dt = Obs.Clock.time (fun () -> ignore (Sys.opaque_identity 1)) in
  check Alcotest.bool "elapsed nonnegative" true (dt >= 0.0)

(* ------------------------------------------------------------------ *)
(* Bench_report: the BENCH_results.json schema                         *)
(* ------------------------------------------------------------------ *)

let sample_report () =
  {
    Obs.Bench_report.schema_version = Obs.Bench_report.schema_version;
    mode = "quick";
    domains = 4;
    tables_wall_s = 0.25;
    experiments =
      List.mapi
        (fun i id ->
          {
            Obs.Bench_report.name = id;
            wall_s = 0.01 *. float_of_int (i + 1);
            events = 100 * i;
            activations = 50 * i;
            scheduled = 110 * i;
            kernels = i;
            table_checksum = Obs.Checksum.of_string id;
          })
        Registry.ids;
    microbenchmarks =
      [ { Obs.Bench_report.m_name = "codesign/iss/fir-kernel";
          ns_per_run = 12345.6 } ];
  }

let test_report_roundtrip () =
  let r = sample_report () in
  match Obs.Bench_report.of_json (Obs.Bench_report.to_json r) with
  | Ok r' -> if r' <> r then fail "report round trip changed the value"
  | Error e -> fail e

(* The golden test the bench harness's artifact is held to: written with
   Bench_report.write (the exact code path bench/main.exe uses), the
   file must parse back and name every registry experiment. *)
let test_report_golden_file () =
  let path = Filename.temp_file "bench_results" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Obs.Bench_report.write ~path (sample_report ());
      match Obs.Bench_report.read ~path with
      | Error e -> fail ("written artifact does not parse: " ^ e)
      | Ok r ->
          let names =
            List.map (fun e -> e.Obs.Bench_report.name) r.experiments
          in
          check (Alcotest.list Alcotest.string) "all fourteen experiments"
            [ "EXP-1"; "EXP-2"; "EXP-3"; "EXP-3M"; "EXP-4"; "EXP-5"; "EXP-6";
              "EXP-7"; "EXP-8"; "EXP-9"; "EXP-10"; "EXP-A"; "EXP-F";
              "EXP-P" ]
            names;
          check Alcotest.int "schema version" Obs.Bench_report.schema_version
            r.Obs.Bench_report.schema_version)

let test_report_rejects_bad () =
  let reject j name =
    match Obs.Bench_report.of_json j with
    | Error _ -> ()
    | Ok _ -> fail ("accepted invalid report: " ^ name)
  in
  reject (Json.Obj []) "empty object";
  reject
    (Json.Obj [ ("schema_version", Json.Int 999) ])
    "future schema version";
  let good = Obs.Bench_report.to_json (sample_report ()) in
  (match good with
  | Json.Obj fields ->
      reject
        (Json.Obj
           (List.map
              (fun (k, v) ->
                if k = "experiments" then
                  (k, Json.List [ Json.Obj [ ("name", Json.Int 3) ] ])
                else (k, v))
              fields))
        "experiment with wrong field type"
  | _ -> fail "report did not serialise to an object")

(* ------------------------------------------------------------------ *)
(* Fuzz_report: the fuzz --json schema                                 *)
(* ------------------------------------------------------------------ *)

let sample_fuzz_report () =
  {
    Obs.Fuzz_report.schema_version = Obs.Fuzz_report.schema_version;
    seed = 42;
    count = 500;
    behavior_cases = 407;
    ladder_cases = 31;
    taskgraph_cases = 62;
    fault_cases = 0;
    rtl_blocks = 4542;
    wall_s = 6.5;
    failures =
      [
        {
          Obs.Fuzz_report.f_category = "behavior";
          f_seed = 63;
          f_detail = "iss results differ";
          f_program = Some "proc fz() {\n  out(0, 1);\n}";
          f_shrunk_stmts = Some 1;
        };
        {
          Obs.Fuzz_report.f_category = "ladder";
          f_seed = 64;
          f_detail = "checksum differs";
          f_program = None;
          f_shrunk_stmts = None;
        };
      ];
    degraded =
      [
        ( 97,
          {
            Obs.Degraded.error = "Failure(\"boom\")";
            attempts = 3;
            elapsed = 0;
          } );
      ];
  }

let test_fuzz_report_roundtrip () =
  let r = sample_fuzz_report () in
  match Obs.Fuzz_report.of_json (Obs.Fuzz_report.to_json r) with
  | Ok r' -> if r' <> r then fail "fuzz report round trip changed the value"
  | Error e -> fail e

let test_fuzz_report_file_roundtrip () =
  let path = Filename.temp_file "fuzz_results" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Obs.Fuzz_report.write ~path (sample_fuzz_report ());
      match Obs.Fuzz_report.read ~path with
      | Error e -> fail ("written artifact does not parse: " ^ e)
      | Ok r ->
          if r <> sample_fuzz_report () then
            fail "file round trip changed the value")

(* A pre-degradation (schema 1) artifact — no "degraded" member — still
   parses, with an empty degraded list. *)
let test_fuzz_report_reads_v1 () =
  let j =
    match Obs.Fuzz_report.to_json (sample_fuzz_report ()) with
    | Json.Obj fields ->
        Json.Obj
          (List.filter_map
             (fun (k, v) ->
               if k = "degraded" then None
               else if k = "schema_version" then Some (k, Json.Int 1)
               else Some (k, v))
             fields)
    | _ -> fail "fuzz report did not serialise to an object"
  in
  match Obs.Fuzz_report.of_json j with
  | Ok r ->
      check Alcotest.int "old version preserved" 1
        r.Obs.Fuzz_report.schema_version;
      check Alcotest.bool "no degraded entries" true
        (r.Obs.Fuzz_report.degraded = [])
  | Error e -> fail ("schema 1 fuzz report rejected: " ^ e)

let test_fuzz_report_rejects_bad () =
  let reject j name =
    match Obs.Fuzz_report.of_json j with
    | Error _ -> ()
    | Ok _ -> fail ("accepted invalid fuzz report: " ^ name)
  in
  reject (Json.Obj []) "empty object";
  reject
    (Json.Obj [ ("schema_version", Json.Int 999) ])
    "future schema version";
  match Obs.Fuzz_report.to_json (sample_fuzz_report ()) with
  | Json.Obj fields ->
      reject
        (Json.Obj
           (List.map
              (fun (k, v) ->
                if k = "failures" then
                  (k, Json.List [ Json.Obj [ ("category", Json.Int 3) ] ])
                else (k, v))
              fields))
        "failure with wrong field type"
  | _ -> fail "fuzz report did not serialise to an object"

(* ------------------------------------------------------------------ *)
(* Fault_report: the fault-campaign --json schema                      *)
(* ------------------------------------------------------------------ *)

let sample_fault_report () =
  {
    Obs.Fault_report.schema_version = Obs.Fault_report.schema_version;
    seed = 42;
    ops_per_cell = 240;
    warmup_per_cell = 120;
    rates = [ 0.02; 0.1 ];
    cells =
      [
        {
          Obs.Fault_report.mechanism = "tlm";
          rate = 0.02;
          ops = 240;
          faulted_ops = 19;
          injected = 48;
          detected = 47;
          recovered_ops = 10;
          lost_ops = 9;
          retries = 52;
          watchdog_bites = 0;
          degraded_to = None;
          sim_cycles = 123456;
          cycle_overhead = 0.485;
          recovery_rate = 0.5263157894;
          mean_detect_latency = 25.33;
          checksum_ok = false;
          degraded = None;
        };
        {
          Obs.Fault_report.mechanism = "degrade";
          rate = 0.1;
          ops = 240;
          faulted_ops = 50;
          injected = 65;
          detected = 99;
          recovered_ops = 45;
          lost_ops = 5;
          retries = 80;
          watchdog_bites = 3;
          degraded_to = Some "token";
          sim_cycles = 654321;
          cycle_overhead = 4.748;
          recovery_rate = 0.9;
          mean_detect_latency = 366.29;
          checksum_ok = false;
          degraded =
            Some
              {
                Obs.Degraded.error = "chaos: injected trap at op 120";
                attempts = 3;
                elapsed = 987654;
              };
        };
      ];
    drills =
      [
        {
          Obs.Fault_report.d_site = "rtl";
          d_mechanism = "tmr-vote";
          d_injected = 30;
          d_detected = 0;
          d_recovered = 30;
        };
      ];
  }

let test_fault_report_roundtrip () =
  let r = sample_fault_report () in
  match Obs.Fault_report.of_json (Obs.Fault_report.to_json r) with
  | Ok r' ->
      (* floats pass through %.12g, so compare re-serialized forms *)
      if
        Json.to_string (Obs.Fault_report.to_json r')
        <> Json.to_string (Obs.Fault_report.to_json r)
      then fail "fault report round trip changed the value"
  | Error e -> fail e

let test_fault_report_file_roundtrip () =
  let path = Filename.temp_file "fault_results" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Obs.Fault_report.write ~path (sample_fault_report ());
      let first = In_channel.with_open_bin path In_channel.input_all in
      Obs.Fault_report.write ~path (sample_fault_report ());
      let second = In_channel.with_open_bin path In_channel.input_all in
      check Alcotest.string "writes are byte-identical" first second;
      match Obs.Fault_report.read ~path with
      | Error e -> fail ("written artifact does not parse: " ^ e)
      | Ok r ->
          if
            Json.to_string (Obs.Fault_report.to_json r)
            <> Json.to_string
                 (Obs.Fault_report.to_json (sample_fault_report ()))
          then fail "file round trip changed the value")

(* A pre-degradation (schema 2) artifact still parses: cells without a
   "degraded" member read back as non-degraded. *)
let test_fault_report_reads_v2 () =
  let r = sample_fault_report () in
  let r =
    {
      r with
      Obs.Fault_report.schema_version = 2;
      cells =
        List.map
          (fun c -> { c with Obs.Fault_report.degraded = None })
          r.Obs.Fault_report.cells;
    }
  in
  match Obs.Fault_report.of_json (Obs.Fault_report.to_json r) with
  | Ok r' ->
      check Alcotest.int "old version preserved" 2
        r'.Obs.Fault_report.schema_version;
      check Alcotest.bool "cells read back non-degraded" true
        (List.for_all
           (fun (c : Obs.Fault_report.cell) ->
             c.Obs.Fault_report.degraded = None)
           r'.Obs.Fault_report.cells)
  | Error e -> fail ("schema 2 fault report rejected: " ^ e)

let test_fault_report_rejects_bad () =
  let reject j name =
    match Obs.Fault_report.of_json j with
    | Error _ -> ()
    | Ok _ -> fail ("accepted invalid fault report: " ^ name)
  in
  reject (Json.Obj []) "empty object";
  reject
    (Json.Obj [ ("schema_version", Json.Int 999) ])
    "future schema version";
  match Obs.Fault_report.to_json (sample_fault_report ()) with
  | Json.Obj fields ->
      reject
        (Json.Obj
           (List.map
              (fun (k, v) ->
                if k = "cells" then
                  (k, Json.List [ Json.Obj [ ("mechanism", Json.Int 3) ] ])
                else (k, v))
              fields))
        "cell with wrong field type"
  | _ -> fail "fault report did not serialise to an object"

(* The registry itself: fourteen entries, unique ids, resolvable by both
   spellings. *)
let test_registry_shape () =
  check Alcotest.int "fourteen experiments" 14 (List.length Registry.all);
  check Alcotest.int "unique ids" 14
    (List.length (List.sort_uniq compare Registry.ids));
  (match Registry.find "exp10" with
  | Some e -> check Alcotest.string "cli name resolves" "EXP-10" e.exp_id
  | None -> fail "exp10 not found");
  match Registry.find "EXP-A" with
  | Some e -> check Alcotest.string "exp id resolves" "expA" e.cli_name
  | None -> fail "EXP-A not found"

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "codesign_obs"
    [
      ( "json",
        [
          Alcotest.test_case "round trip compact" `Quick test_json_roundtrip;
          Alcotest.test_case "round trip pretty" `Quick
            test_json_roundtrip_pretty;
          Alcotest.test_case "literal forms" `Quick test_json_literals;
          Alcotest.test_case "non-finite rejected" `Quick
            test_json_nonfinite_rejected;
          Alcotest.test_case "number classification" `Quick
            test_json_parse_numbers;
          Alcotest.test_case "string escapes" `Quick test_json_parse_escapes;
          Alcotest.test_case "malformed inputs" `Quick test_json_parse_errors;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
        ] );
      ( "checksum",
        [
          Alcotest.test_case "fnv1a64 vectors" `Quick test_checksum_vectors;
          Alcotest.test_case "distinguishes" `Quick
            test_checksum_distinguishes;
        ] );
      ( "clock",
        [ Alcotest.test_case "monotonic" `Quick test_clock_monotonic ] );
      ( "bench_report",
        [
          Alcotest.test_case "round trip" `Quick test_report_roundtrip;
          Alcotest.test_case "golden file: parses, names all fourteen" `Quick
            test_report_golden_file;
          Alcotest.test_case "rejects invalid" `Quick test_report_rejects_bad;
          Alcotest.test_case "registry shape" `Quick test_registry_shape;
        ] );
      ( "fuzz_report",
        [
          Alcotest.test_case "round trip" `Quick test_fuzz_report_roundtrip;
          Alcotest.test_case "file round trip" `Quick
            test_fuzz_report_file_roundtrip;
          Alcotest.test_case "rejects invalid" `Quick
            test_fuzz_report_rejects_bad;
          Alcotest.test_case "reads schema 1 artifacts" `Quick
            test_fuzz_report_reads_v1;
        ] );
      ( "fault_report",
        [
          Alcotest.test_case "round trip" `Quick test_fault_report_roundtrip;
          Alcotest.test_case "file round trip byte-identical" `Quick
            test_fault_report_file_roundtrip;
          Alcotest.test_case "rejects invalid" `Quick
            test_fault_report_rejects_bad;
          Alcotest.test_case "reads schema 2 artifacts" `Quick
            test_fault_report_reads_v2;
        ] );
    ]
