(* Tests for the cross-level differential fuzzer (lib/fuzz): a clean
   campaign over every domain, the bug-injection acceptance check — a
   deliberately miscompiled branch must be caught and shrunk to a
   handful of statements — and the shrinker on its own. *)

open Codesign_fuzz
module B = Codesign_ir.Behavior
module Rng = Codesign_ir.Rng
module Isa = Codesign_isa.Isa
module Asm = Codesign_isa.Asm
module R = Codesign_obs.Fuzz_report

let check = Alcotest.check
let fail = Alcotest.fail

(* ------------------------------------------------------------------ *)
(* generator                                                           *)
(* ------------------------------------------------------------------ *)

let test_gen_deterministic () =
  let p1 = Gen.behavior (Rng.create 123) in
  let p2 = Gen.behavior (Rng.create 123) in
  check Alcotest.bool "equal seeds, equal programs" true (p1 = p2);
  let p3 = Gen.behavior (Rng.create 124) in
  check Alcotest.bool "different seeds diverge" true (p1 <> p3)

let test_gen_well_formed () =
  (* every generated behaviour is well-formed: it either halts inside
     the oracle's fuel or spins in a steered loop (which the oracle
     treats as vacuous) — it never raises for unbound arrays or other
     ill-formedness, and the unbounded cases are a small minority *)
  let halted = ref 0 in
  for s = 0 to 199 do
    let p = Gen.behavior (Rng.create s) in
    match B.run ~fuel:300_000 p [] with
    | _ -> incr halted
    | exception Invalid_argument m ->
        let fuelled =
          let needle = "fuel" in
          let nl = String.length needle and ml = String.length m in
          let rec at i = i + nl <= ml && (String.sub m i nl = needle || at (i + 1)) in
          at 0
        in
        if not fuelled then fail (Printf.sprintf "seed %d: %s" s m)
  done;
  check Alcotest.bool
    (Printf.sprintf "vast majority halt (%d/200)" !halted)
    true (!halted >= 180)

(* ------------------------------------------------------------------ *)
(* the oracle                                                          *)
(* ------------------------------------------------------------------ *)

let test_diff_agrees_on_oob () =
  (* out-of-bounds accesses clamp identically on every level — the
     divergence class the codegen fix closed *)
  let p =
    {
      B.name = "oob";
      params = [];
      arrays = [ ("t", 2) ];
      results = [ "x" ];
      body =
        [
          B.Store ("t", B.Int 500000, B.Int 7);
          B.Assign ("x", B.Idx ("t", B.Int (-3)));
          B.PortOut (0, B.Var "x");
        ];
    }
  in
  match (Diff.check_behavior p).Diff.error with
  | None -> ()
  | Some e -> fail e

let test_diff_ladder_clean () =
  for s = 0 to 9 do
    match Diff.check_ladder (Rng.create s) with
    | None -> ()
    | Some e -> fail (Printf.sprintf "seed %d: %s" s e)
  done

let test_trace_checksum () =
  let c1 = Diff.trace_checksum [ (0, 1); (1, 2) ] [ ("x", 3) ] in
  let c2 = Diff.trace_checksum [ (0, 1); (1, 2) ] [ ("x", 3) ] in
  let c3 = Diff.trace_checksum [ (1, 2); (0, 1) ] [ ("x", 3) ] in
  check Alcotest.string "deterministic" c1 c2;
  check Alcotest.bool "order-sensitive" true (c1 <> c3)

(* ------------------------------------------------------------------ *)
(* campaign                                                            *)
(* ------------------------------------------------------------------ *)

let test_campaign_clean () =
  let r = Fuzz.run ~seed:7 ~count:60 () in
  check Alcotest.int "covers all 60 cases" 60
    (r.R.behavior_cases + r.R.ladder_cases + r.R.taskgraph_cases);
  check Alcotest.bool "every domain exercised" true
    (r.R.behavior_cases > 0 && r.R.ladder_cases > 0
    && r.R.taskgraph_cases > 0);
  check Alcotest.bool "rtl blocks executed" true (r.R.rtl_blocks > 0);
  match r.R.failures with
  | [] -> ()
  | f :: _ -> fail (Printf.sprintf "case %d: %s" f.R.f_seed f.R.f_detail)

(* flip the first ge-branch of each compiled program — loop exits and
   clamps go wrong — and require the oracle to notice and the shrinker
   to cut a counterexample down to at most ten statements *)
let flip_first_ge items =
  let flipped = ref false in
  List.map
    (fun it ->
      match it with
      | Asm.Ins (Isa.B (Isa.Ge, a, b, l)) when not !flipped ->
          flipped := true;
          Asm.Ins (Isa.B (Isa.Lt, a, b, l))
      | it -> it)
    items

let test_injected_bug_caught () =
  let r = Fuzz.run ~seed:42 ~count:48 ~transform_asm:flip_first_ge () in
  let behaviors =
    List.filter (fun f -> f.R.f_category = "behavior") r.R.failures
  in
  check Alcotest.bool "at least one behavior case caught the bug" true
    (behaviors <> []);
  List.iter
    (fun f ->
      if f.R.f_program = None || f.R.f_shrunk_stmts = None then
        fail "behavior failure reported without a shrunk program")
    behaviors;
  let smallest =
    List.fold_left
      (fun acc f ->
        match f.R.f_shrunk_stmts with Some n -> min acc n | None -> acc)
      max_int behaviors
  in
  check Alcotest.bool
    (Printf.sprintf "shrunk to <= 10 statements (got %d)" smallest)
    true (smallest <= 10)

(* ------------------------------------------------------------------ *)
(* shrinker                                                            *)
(* ------------------------------------------------------------------ *)

let test_shrinker_minimises () =
  (* keep: the port trace still contains (0, 42); everything else in
     the program is droppable noise *)
  let p =
    {
      B.name = "big";
      params = [];
      arrays = [ ("a0", 4) ];
      results = [];
      body =
        [
          B.Assign ("v0", B.Int 5);
          B.For ("i", B.Int 0, B.Int 3,
                 [ B.Store ("a0", B.Var "i", B.Int 9) ]);
          B.If
            ( B.Var "v0",
              [ B.PortOut (1, B.Var "v0") ],
              [ B.PortOut (2, B.Int 3) ] );
          B.PortOut (0, B.Bin (B.Add, B.Int 41, B.Int 1));
          B.Assign ("v1", B.Idx ("a0", B.Int 2));
          B.PortOut (3, B.Var "v1");
        ];
    }
  in
  let keep q =
    let io, out = B.collecting_io () in
    match B.run ~io ~fuel:10_000 q [] with
    | _ -> List.mem (0, 42) (List.rev !out)
    | exception _ -> false
  in
  check Alcotest.bool "original satisfies keep" true (keep p);
  let small = Shrink.minimize ~keep p in
  check Alcotest.bool "shrunk still satisfies keep" true (keep small);
  check Alcotest.bool
    (Printf.sprintf "minimal (%d stmts)" (B.static_stmts small))
    true
    (B.static_stmts small <= 2)

let test_shrinker_respects_eval_cap () =
  let calls = ref 0 in
  let p = Gen.behavior (Rng.create 5) in
  let keep _ =
    incr calls;
    false
  in
  ignore (Shrink.minimize ~max_evals:25 ~keep p);
  check Alcotest.bool "capped" true (!calls <= 25)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "codesign_fuzz"
    [
      ( "gen",
        [
          Alcotest.test_case "deterministic" `Quick test_gen_deterministic;
          Alcotest.test_case "well-formed" `Quick test_gen_well_formed;
        ] );
      ( "diff",
        [
          Alcotest.test_case "oob clamps agree" `Quick
            test_diff_agrees_on_oob;
          Alcotest.test_case "ladder clean" `Quick test_diff_ladder_clean;
          Alcotest.test_case "trace checksum" `Quick test_trace_checksum;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "60 cases clean" `Quick test_campaign_clean;
          Alcotest.test_case "injected codegen bug caught + shrunk" `Quick
            test_injected_bug_caught;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "minimises to the kernel" `Quick
            test_shrinker_minimises;
          Alcotest.test_case "eval cap" `Quick
            test_shrinker_respects_eval_cap;
        ] );
    ]
