(* Tests for the codesign_sim library: event queue, kernel, signals,
   channels. *)

open Codesign_sim
module K = Kernel
module Q = Event_queue

let check = Alcotest.check
let fail = Alcotest.fail

(* ------------------------------------------------------------------ *)
(* Event_queue                                                         *)
(* ------------------------------------------------------------------ *)

let test_q_order () =
  let q = Q.create () in
  let log = ref [] in
  let ev tag () = log := tag :: !log in
  Q.push q ~time:5 (ev "c");
  Q.push q ~time:1 (ev "a");
  Q.push q ~time:3 (ev "b");
  let rec drain () =
    match Q.pop q with
    | None -> ()
    | Some (_, f) ->
        f ();
        drain ()
  in
  drain ();
  check (Alcotest.list Alcotest.string) "order" [ "a"; "b"; "c" ]
    (List.rev !log)

let test_q_stability () =
  (* same timestamp: insertion order *)
  let q = Q.create () in
  let log = ref [] in
  for i = 0 to 9 do
    Q.push q ~time:7 (fun () -> log := i :: !log)
  done;
  let rec drain () =
    match Q.pop q with
    | None -> ()
    | Some (_, f) ->
        f ();
        drain ()
  in
  drain ();
  check (Alcotest.list Alcotest.int) "fifo at same time"
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.rev !log)

let test_q_stress_sorted () =
  (* pseudo-random pushes come out sorted by time *)
  let q = Q.create () in
  let seed = ref 12345 in
  let next () =
    seed := (!seed * 1103515245) + 12345;
    (!seed lsr 7) land 0xFFFF
  in
  for _ = 1 to 500 do
    Q.push q ~time:(next ()) ignore
  done;
  let last = ref (-1) in
  let rec drain n =
    match Q.pop q with
    | None -> n
    | Some (t, _) ->
        if t < !last then fail "out of order";
        last := t;
        drain (n + 1)
  in
  check Alcotest.int "count" 500 (drain 0);
  check Alcotest.int "pushed_total" 500 (Q.pushed_total q)

let test_q_10k_sorted_fifo () =
  (* 10k pseudo-random pushes pop in nondecreasing time, FIFO among
     equal timestamps *)
  let n = 10_000 in
  let q = Q.create () in
  let seed = ref 2026 in
  let next () =
    seed := ((!seed * 1103515245) + 12345) land 0x3FFFFFFF;
    !seed mod 97 (* few distinct times -> many same-time collisions *)
  in
  let times = Array.init n (fun _ -> next ()) in
  let popped = ref [] in
  for i = 0 to n - 1 do
    Q.push q ~time:times.(i) (fun () -> popped := i :: !popped)
  done;
  let rec drain () =
    match Q.pop q with
    | None -> ()
    | Some (t, f) ->
        f ();
        (match !popped with
        | i :: _ -> check Alcotest.int "pop time = push time" times.(i) t
        | [] -> fail "thunk did not record");
        drain ()
  in
  drain ();
  let order = List.rev !popped in
  check Alcotest.int "all popped" n (List.length order);
  ignore
    (List.fold_left
       (fun prev i ->
         (match prev with
         | Some j ->
             if times.(j) > times.(i) then fail "time decreased";
             if times.(j) = times.(i) && j > i then
               fail "FIFO violated among equal timestamps"
         | None -> ());
         Some i)
       None order)

let prop_q_sorted_fifo =
  QCheck.Test.make ~name:"event queue pops sorted, fifo ties" ~count:100
    QCheck.(list_of_size Gen.(int_range 0 200) (int_range 0 20))
    (fun times ->
      let q = Q.create () in
      let popped = ref [] in
      List.iteri
        (fun i t -> Q.push q ~time:t (fun () -> popped := (t, i) :: !popped))
        times;
      let rec drain () =
        match Q.pop q with
        | None -> ()
        | Some (_, f) ->
            f ();
            drain ()
      in
      drain ();
      let l = List.rev !popped in
      let rec ok = function
        | (t1, i1) :: ((t2, i2) :: _ as rest) ->
            (t1 < t2 || (t1 = t2 && i1 < i2)) && ok rest
        | _ -> true
      in
      List.length l = List.length times && ok l)

(* 10k pseudo-random interleaved pushes and pops against a sorted-list
   model: the pop order is (time, insertion sequence) even while the
   queue is mutating, not just after a bulk load *)
let test_q_interleaved_model () =
  let q = Q.create () in
  let seed = ref 77 in
  let next bound =
    seed := ((!seed * 1103515245) + 12345) land 0x3FFFFFFF;
    !seed mod bound
  in
  let model = ref [] (* (time, seq), sorted with stable ties *) in
  let insert time s =
    let rec go = function
      | (t, s') :: rest when t < time || (t = time && s' < s) ->
          (t, s') :: go rest
      | l -> (time, s) :: l
    in
    model := go !model
  in
  let last = ref (-1, -1) in
  let seq = ref 0 in
  for _ = 1 to 10_000 do
    if next 5 < 3 then begin
      (* biased towards pushes so the queue keeps a deep backlog *)
      let time = next 50 in
      let s = !seq in
      incr seq;
      insert time s;
      Q.push q ~time (fun () -> last := (time, s))
    end
    else
      match (Q.pop q, !model) with
      | None, [] -> ()
      | Some (t, f), (mt, ms) :: rest ->
          model := rest;
          f ();
          check
            (Alcotest.pair Alcotest.int Alcotest.int)
            "pop matches model" (mt, ms) !last;
          check Alcotest.int "reported pop time" mt t
      | Some _, [] -> fail "queue popped but model is empty"
      | None, _ :: _ -> fail "queue empty but model is not"
  done;
  check Alcotest.int "sizes agree" (List.length !model) (Q.size q)

let test_q_negative () =
  let q = Q.create () in
  try
    Q.push q ~time:(-1) ignore;
    fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_q_peek () =
  let q = Q.create () in
  check (Alcotest.option Alcotest.int) "empty" None (Q.peek_time q);
  Q.push q ~time:9 ignore;
  check (Alcotest.option Alcotest.int) "peek" (Some 9) (Q.peek_time q);
  check Alcotest.int "size" 1 (Q.size q);
  check Alcotest.bool "not empty" false (Q.is_empty q)

let test_q_pop_into () =
  (* the allocation-free drain: bounded pops honour the limit and leave
     past-limit events queued; one slot serves the whole loop *)
  let q = Q.create () in
  check Alcotest.int "min_time empty" max_int (Q.min_time q);
  let log = ref [] in
  List.iter
    (fun (t, tag) -> Q.push q ~time:t (fun () -> log := tag :: !log))
    [ (5, "c"); (1, "a"); (8, "d"); (1, "b"); (12, "e") ];
  check Alcotest.int "min_time" 1 (Q.min_time q);
  let slot = Q.slot () in
  while Q.pop_into q ~limit:8 slot do
    slot.Q.s_thunk ()
  done;
  check
    (Alcotest.list Alcotest.string)
    "drained up to limit inclusive, stable at equal times"
    [ "a"; "b"; "c"; "d" ] (List.rev !log);
  check Alcotest.int "past-limit event remains" 1 (Q.size q);
  check Alcotest.bool "blocked pop leaves queue untouched" false
    (Q.pop_into q ~limit:11 slot);
  check Alcotest.int "still there" 1 (Q.size q);
  check Alcotest.bool "unbounded drain" true
    (Q.pop_into q ~limit:max_int slot);
  check Alcotest.int "slot time" 12 slot.Q.s_time;
  check Alcotest.bool "empty" true (Q.is_empty q)

(* ------------------------------------------------------------------ *)
(* Kernel                                                              *)
(* ------------------------------------------------------------------ *)

let test_kernel_wait () =
  let k = K.create () in
  let log = ref [] in
  K.spawn ~name:"p" k (fun () ->
      log := (K.now k, "start") :: !log;
      K.wait 10;
      log := (K.now k, "mid") :: !log;
      K.wait 5;
      log := (K.now k, "end") :: !log);
  let st = K.run k in
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.string))
    "timeline"
    [ (0, "start"); (10, "mid"); (15, "end") ]
    (List.rev !log);
  check Alcotest.int "end_time" 15 st.K.end_time;
  check Alcotest.int "spawned" 1 st.K.spawned;
  check Alcotest.int "activations" 3 st.K.activations

let test_kernel_interleave () =
  (* two processes with different periods interleave deterministically *)
  let k = K.create () in
  let log = ref [] in
  K.spawn ~name:"a" k (fun () ->
      for _ = 1 to 3 do
        log := ("a", K.now k) :: !log;
        K.wait 4
      done);
  K.spawn ~name:"b" k (fun () ->
      for _ = 1 to 4 do
        log := ("b", K.now k) :: !log;
        K.wait 3
      done);
  ignore (K.run k);
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "interleaving"
    [
      ("a", 0); ("b", 0); ("b", 3); ("a", 4); ("b", 6); ("a", 8); ("b", 9);
    ]
    (List.rev !log)

let test_kernel_until () =
  let k = K.create () in
  let count = ref 0 in
  K.spawn k (fun () ->
      let continue_ = ref true in
      while !continue_ do
        incr count;
        K.wait 10;
        if K.now k > 1000 then continue_ := false
      done);
  let st = K.run ~until:95 k in
  check Alcotest.int "activations bounded" 10 !count;
  check Alcotest.bool "time <= until" true (st.K.end_time <= 95);
  (* resuming continues where we left off *)
  let st2 = K.run ~until:205 k in
  check Alcotest.int "more activations" 21 !count;
  check Alcotest.bool "time advanced" true (st2.K.end_time > st.K.end_time)

let test_kernel_deadlock () =
  let k = K.create () in
  K.spawn ~name:"stuck" k (fun () ->
      K.suspend ~register:(fun _resume -> ()));
  (try
     ignore (K.run k);
     fail "expected Deadlock"
   with K.Deadlock names ->
     check Alcotest.string "names" "stuck" names);
  (* with expect_quiescent the same situation is fine *)
  let k2 = K.create () in
  K.spawn ~name:"stuck" k2 (fun () ->
      K.suspend ~register:(fun _resume -> ()));
  ignore (K.run ~expect_quiescent:true k2)

let test_kernel_bounded_deadlock_audit () =
  (* a bounded run never raises by default, but the blocked processes
     are auditable via blocked_non_daemon, and ~check_deadlock:true
     turns a drained-queue-with-blocked-processes bounded run into the
     same Deadlock an unbounded run reports *)
  let mk () =
    let k = K.create () in
    K.spawn ~name:"starved" k (fun () ->
        K.suspend ~register:(fun _resume -> ()));
    K.spawn ~name:"watcher" ~daemon:true k (fun () ->
        K.suspend ~register:(fun _resume -> ()));
    k
  in
  let k = mk () in
  let st = K.run ~until:50 k in
  check Alcotest.int "clock coasted to bound" 50 st.K.end_time;
  check
    (Alcotest.list Alcotest.string)
    "audit names the stuck non-daemon" [ "starved" ]
    (K.blocked_non_daemon k);
  (try
     ignore (K.run ~until:100 ~check_deadlock:true (mk ()));
     fail "expected Deadlock"
   with K.Deadlock names -> check Alcotest.string "names" "starved" names);
  (* with future events still queued past the bound there is no
     deadlock: the simulation can progress when run again *)
  let k3 = mk () in
  K.at k3 ~time:80 ignore;
  let st3 = K.run ~until:10 ~check_deadlock:true k3 in
  check Alcotest.int "bound respected" 10 st3.K.end_time

let test_kernel_not_in_process () =
  (try
     K.wait 5;
     fail "expected Not_in_process"
   with K.Not_in_process -> ());
  try
    K.yield ();
    fail "expected Not_in_process"
  with K.Not_in_process -> ()

let test_kernel_negative_wait () =
  let k = K.create () in
  let saw = ref false in
  K.spawn k (fun () ->
      try K.wait (-1) with Invalid_argument _ -> saw := true);
  ignore (K.run k);
  check Alcotest.bool "raised inside process" true !saw

let test_kernel_yield_ordering () =
  (* yield lets already-scheduled same-time events run first *)
  let k = K.create () in
  let log = ref [] in
  K.spawn ~name:"first" k (fun () ->
      log := "first.a" :: !log;
      K.yield ();
      log := "first.b" :: !log);
  K.spawn ~name:"second" k (fun () -> log := "second" :: !log);
  ignore (K.run k);
  check (Alcotest.list Alcotest.string) "order"
    [ "first.a"; "second"; "first.b" ]
    (List.rev !log)

let test_kernel_at_callback () =
  let k = K.create () in
  let fired = ref (-1) in
  K.at k ~time:42 (fun () -> fired := K.now k);
  ignore (K.run k);
  check Alcotest.int "fired at 42" 42 !fired;
  try
    K.at k ~time:1 ignore;
    fail "expected Invalid_argument (past)"
  with Invalid_argument _ -> ()

let test_kernel_self_name () =
  let k = K.create () in
  let name = ref "" in
  K.spawn ~name:"zeta" k (fun () -> name := K.self_name ());
  ignore (K.run k);
  check Alcotest.string "self name" "zeta" !name;
  check Alcotest.string "outside" "?" (K.self_name ())

let test_kernel_trace () =
  let k = K.create () in
  let log = ref [] in
  K.trace k (fun t m -> log := (t, m) :: !log);
  K.spawn k (fun () ->
      K.emit k "hello";
      K.wait 7;
      K.emit k "world");
  ignore (K.run k);
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.string))
    "trace"
    [ (0, "hello"); (7, "world") ]
    (List.rev !log)

let test_kernel_until_idle_time () =
  (* run ~until advances time to the bound when the queue drains early *)
  let k = K.create () in
  K.spawn k (fun () -> K.wait 3);
  let st = K.run ~until:50 k in
  check Alcotest.int "advanced to until" 50 st.K.end_time

let test_kernel_until_pending_clock () =
  (* regression: with future events still queued past the bound, the
     clock must land exactly on the bound, so that work added between
     bounded runs is timed from the bound, not from the last event *)
  let k = K.create () in
  K.spawn k (fun () -> K.wait 100);
  let st = K.run ~until:30 k in
  check Alcotest.int "clock at bound despite queued future" 30 st.K.end_time;
  check Alcotest.int "now agrees" 30 (K.now k);
  let fired = ref (-1) in
  K.spawn k (fun () ->
      K.wait 5;
      fired := K.now k);
  ignore (K.run ~until:60 k);
  check Alcotest.int "subsequent wait timed from the bound" 35 !fired;
  (* the original process still completes at its own schedule *)
  let st3 = K.run ~until:200 k in
  check Alcotest.int "original event fired on time" 200 st3.K.end_time

let test_kernel_daemon_quiescent () =
  (* regression: blocked daemon processes do not count as deadlock *)
  let k = K.create () in
  K.spawn ~name:"watcher" ~daemon:true k (fun () ->
      K.suspend ~register:(fun _resume -> ()));
  K.spawn ~name:"work" k (fun () -> K.wait 5);
  let st = K.run k in
  (* no Deadlock raised *)
  check Alcotest.int "ran to completion" 5 st.K.end_time

let test_kernel_daemon_mixed_deadlock () =
  (* a stuck non-daemon still deadlocks, and only its name is listed *)
  let k = K.create () in
  K.spawn ~name:"watcher" ~daemon:true k (fun () ->
      K.suspend ~register:(fun _resume -> ()));
  K.spawn ~name:"stuck" k (fun () -> K.suspend ~register:(fun _resume -> ()));
  try
    ignore (K.run k);
    fail "expected Deadlock"
  with K.Deadlock names -> check Alcotest.string "names" "stuck" names

(* qcheck: N processes each waiting random deltas always terminate with
   end_time = max total delta. *)
let prop_kernel_endtime =
  QCheck.Test.make ~name:"end time = max process span" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 5) (list_of_size Gen.(int_range 0 6) (int_range 0 20)))
    (fun delays_per_proc ->
      let k = K.create () in
      List.iter
        (fun delays ->
          K.spawn k (fun () -> List.iter (fun d -> K.wait d) delays))
        delays_per_proc;
      let st = K.run k in
      let expect =
        List.fold_left
          (fun acc ds -> max acc (List.fold_left ( + ) 0 ds))
          0 delays_per_proc
      in
      st.K.end_time = expect)

(* ------------------------------------------------------------------ *)
(* Signal                                                              *)
(* ------------------------------------------------------------------ *)

let test_signal_write_wake () =
  let k = K.create () in
  let s = Signal.create k 0 in
  let seen = ref (-1) in
  K.spawn ~name:"reader" k (fun () -> seen := Signal.await_change s);
  K.spawn ~name:"writer" k (fun () ->
      K.wait 5;
      Signal.write s 99);
  ignore (K.run k);
  check Alcotest.int "woken with value" 99 !seen;
  check Alcotest.int "write count" 1 (Signal.write_count s)

let test_signal_no_wake_on_same_value () =
  let k = K.create () in
  let s = Signal.create k 7 in
  Signal.write s 7;
  check Alcotest.int "no waking write" 0 (Signal.write_count s);
  Signal.pulse s 7;
  check Alcotest.int "pulse wakes" 1 (Signal.write_count s)

let test_signal_await_predicate () =
  let k = K.create () in
  let s = Signal.create k 0 in
  let hit = ref 0 in
  K.spawn ~name:"waiter" k (fun () -> hit := Signal.await s (fun v -> v >= 3));
  K.spawn ~name:"writer" k (fun () ->
      for i = 1 to 5 do
        K.wait 1;
        Signal.write s i
      done);
  ignore (K.run ~expect_quiescent:true k);
  check Alcotest.int "first satisfying value" 3 !hit

let test_signal_await_immediate () =
  let k = K.create () in
  let s = Signal.create k 10 in
  let hit = ref 0 in
  K.spawn k (fun () -> hit := Signal.await s (fun v -> v = 10));
  ignore (K.run k);
  check Alcotest.int "immediate" 10 !hit

let test_signal_posedge () =
  let k = K.create () in
  let clk = Signal.create k 0 in
  let edges = ref [] in
  K.spawn ~name:"sampler" k (fun () ->
      for _ = 1 to 3 do
        Signal.posedge clk;
        edges := K.now k :: !edges
      done);
  K.spawn ~name:"clock" k (fun () ->
      for _ = 1 to 4 do
        K.wait 5;
        Signal.write clk 1;
        K.wait 5;
        Signal.write clk 0
      done);
  ignore (K.run ~expect_quiescent:true k);
  check (Alcotest.list Alcotest.int) "posedges" [ 5; 15; 25 ]
    (List.rev !edges)

let test_signal_multiple_waiters () =
  let k = K.create () in
  let s = Signal.create k 0 in
  let order = ref [] in
  for i = 1 to 3 do
    K.spawn ~name:(Printf.sprintf "w%d" i) k (fun () ->
        ignore (Signal.await_change s);
        order := i :: !order)
  done;
  K.spawn ~name:"writer" k (fun () ->
      K.wait 1;
      Signal.write s 5);
  ignore (K.run k);
  check (Alcotest.list Alcotest.int) "wake order fifo" [ 1; 2; 3 ]
    (List.rev !order)

(* ------------------------------------------------------------------ *)
(* Channel                                                             *)
(* ------------------------------------------------------------------ *)

let test_chan_rendezvous () =
  let k = K.create () in
  let c = Channel.create ~name:"r" k () in
  let log = ref [] in
  K.spawn ~name:"tx" k (fun () ->
      for i = 1 to 3 do
        Channel.send c i;
        log := ("sent", i, K.now k) :: !log
      done);
  K.spawn ~name:"rx" k (fun () ->
      for _ = 1 to 3 do
        K.wait 10;
        let v = Channel.recv c in
        log := ("recv", v, K.now k) :: !log
      done);
  ignore (K.run k);
  let stats = Channel.stats c in
  check Alcotest.int "sends" 3 stats.Channel.sends;
  check Alcotest.bool "sender blocked" true (stats.Channel.blocked_sends >= 1);
  (* values in order *)
  let recvs = List.filter (fun (t, _, _) -> t = "recv") (List.rev !log) in
  check
    (Alcotest.list Alcotest.int)
    "fifo values" [ 1; 2; 3 ]
    (List.map (fun (_, v, _) -> v) recvs)

let test_chan_buffered_nonblocking () =
  let k = K.create () in
  let c = Channel.create ~depth:4 k () in
  K.spawn ~name:"tx" k (fun () ->
      for i = 1 to 4 do
        Channel.send c i
      done);
  ignore (K.run ~expect_quiescent:true k);
  let stats = Channel.stats c in
  check Alcotest.int "no blocks" 0 stats.Channel.blocked_sends;
  check Alcotest.int "occupancy" 4 (Channel.occupancy c)

let test_chan_buffered_backpressure () =
  let k = K.create () in
  let c = Channel.create ~depth:2 k () in
  let done_tx = ref (-1) in
  K.spawn ~name:"tx" k (fun () ->
      for i = 1 to 5 do
        Channel.send c i
      done;
      done_tx := K.now k);
  K.spawn ~name:"rx" k (fun () ->
      for _ = 1 to 5 do
        K.wait 10;
        ignore (Channel.recv c)
      done);
  ignore (K.run k);
  let stats = Channel.stats c in
  check Alcotest.int "all sent" 5 stats.Channel.sends;
  check Alcotest.bool "tx experienced backpressure" true
    (stats.Channel.blocked_sends > 0);
  check Alcotest.bool "tx finished late" true (!done_tx >= 30)

let test_chan_try_ops () =
  let k = K.create () in
  let c = Channel.create ~depth:1 k () in
  check Alcotest.bool "try_send ok" true (Channel.try_send c 5);
  check Alcotest.bool "try_send full" false (Channel.try_send c 6);
  check (Alcotest.option Alcotest.int) "try_recv" (Some 5)
    (Channel.try_recv c);
  check (Alcotest.option Alcotest.int) "try_recv empty" None
    (Channel.try_recv c)

let test_chan_recv_before_send () =
  let k = K.create () in
  let c = Channel.create k () in
  let got = ref 0 in
  K.spawn ~name:"rx" k (fun () -> got := Channel.recv c);
  K.spawn ~name:"tx" k (fun () ->
      K.wait 20;
      Channel.send c 77);
  ignore (K.run k);
  check Alcotest.int "value" 77 !got;
  check Alcotest.int "recv blocked once" 1 (Channel.stats c).Channel.recv_blocks

let test_chan_many_to_one_fifo () =
  (* multiple pending senders are served in arrival order *)
  let k = K.create () in
  let c = Channel.create k () in
  let got = ref [] in
  for i = 1 to 3 do
    K.spawn ~name:(Printf.sprintf "tx%d" i) k (fun () -> Channel.send c i)
  done;
  K.spawn ~name:"rx" k (fun () ->
      K.wait 5;
      for _ = 1 to 3 do
        got := Channel.recv c :: !got
      done);
  ignore (K.run k);
  check (Alcotest.list Alcotest.int) "fifo" [ 1; 2; 3 ] (List.rev !got)

let prop_chan_transfers_preserve_order =
  QCheck.Test.make ~name:"channel preserves message order" ~count:100
    QCheck.(pair (int_range 0 3) (small_list small_int))
    (fun (depth, msgs) ->
      let k = K.create () in
      let c = Channel.create ~depth k () in
      let out = ref [] in
      K.spawn ~name:"tx" k (fun () ->
          List.iter (fun m -> Channel.send c m) msgs);
      K.spawn ~name:"rx" k (fun () ->
          for _ = 1 to List.length msgs do
            out := Channel.recv c :: !out
          done);
      ignore (K.run k);
      List.rev !out = msgs)

(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* Vcd                                                                 *)
(* ------------------------------------------------------------------ *)

(* golden test: the exact VCD document for a small two-signal run is
   committed under test/golden/; any formatting or ordering drift in
   Vcd.dump shows up as a diff against a file a wave viewer is known to
   accept *)
let test_vcd_golden () =
  let k = K.create () in
  let vcd = Vcd.create k in
  let clk = Signal.create ~name:"clk" k 0 in
  let data = Signal.create ~name:"data" k 0 in
  Vcd.watch vcd ~width:1 clk;
  Vcd.watch vcd ~width:8 data;
  K.spawn k (fun () ->
      for t = 1 to 4 do
        K.wait 5;
        Signal.write clk (t land 1);
        Signal.write data (t * 3)
      done);
  ignore (K.run k);
  let golden =
    let ic = open_in_bin "golden/two_signal.vcd" in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  check Alcotest.string "vcd dump matches golden" golden (Vcd.dump vcd)

let () =
  Alcotest.run "codesign_sim"
    [
      ( "event_queue",
        [
          Alcotest.test_case "time order" `Quick test_q_order;
          Alcotest.test_case "stability" `Quick test_q_stability;
          Alcotest.test_case "stress sorted" `Quick test_q_stress_sorted;
          Alcotest.test_case "10k sorted + fifo ties" `Quick
            test_q_10k_sorted_fifo;
          Alcotest.test_case "10k interleaved push/pop vs model" `Quick
            test_q_interleaved_model;
          Alcotest.test_case "negative time" `Quick test_q_negative;
          Alcotest.test_case "peek/size" `Quick test_q_peek;
          Alcotest.test_case "pop_into bounded drain" `Quick test_q_pop_into;
          QCheck_alcotest.to_alcotest prop_q_sorted_fifo;
        ] );
      ( "kernel",
        [
          Alcotest.test_case "wait timeline" `Quick test_kernel_wait;
          Alcotest.test_case "interleaving" `Quick test_kernel_interleave;
          Alcotest.test_case "until bound + resume" `Quick test_kernel_until;
          Alcotest.test_case "deadlock detection" `Quick test_kernel_deadlock;
          Alcotest.test_case "bounded-run deadlock audit" `Quick
            test_kernel_bounded_deadlock_audit;
          Alcotest.test_case "not in process" `Quick
            test_kernel_not_in_process;
          Alcotest.test_case "negative wait" `Quick test_kernel_negative_wait;
          Alcotest.test_case "yield ordering" `Quick
            test_kernel_yield_ordering;
          Alcotest.test_case "at callback" `Quick test_kernel_at_callback;
          Alcotest.test_case "self name" `Quick test_kernel_self_name;
          Alcotest.test_case "trace" `Quick test_kernel_trace;
          Alcotest.test_case "until idles clock" `Quick
            test_kernel_until_idle_time;
          Alcotest.test_case "until with pending future events" `Quick
            test_kernel_until_pending_clock;
          Alcotest.test_case "daemon quiescent" `Quick
            test_kernel_daemon_quiescent;
          Alcotest.test_case "daemon mixed deadlock" `Quick
            test_kernel_daemon_mixed_deadlock;
          QCheck_alcotest.to_alcotest prop_kernel_endtime;
        ] );
      ( "signal",
        [
          Alcotest.test_case "write wakes" `Quick test_signal_write_wake;
          Alcotest.test_case "no wake on same value" `Quick
            test_signal_no_wake_on_same_value;
          Alcotest.test_case "await predicate" `Quick
            test_signal_await_predicate;
          Alcotest.test_case "await immediate" `Quick
            test_signal_await_immediate;
          Alcotest.test_case "posedge" `Quick test_signal_posedge;
          Alcotest.test_case "multiple waiters fifo" `Quick
            test_signal_multiple_waiters;
        ] );
      ( "vcd",
        [ Alcotest.test_case "two-signal golden dump" `Quick test_vcd_golden ]
      );
      ( "channel",
        [
          Alcotest.test_case "rendezvous" `Quick test_chan_rendezvous;
          Alcotest.test_case "buffered non-blocking" `Quick
            test_chan_buffered_nonblocking;
          Alcotest.test_case "backpressure" `Quick
            test_chan_buffered_backpressure;
          Alcotest.test_case "try ops" `Quick test_chan_try_ops;
          Alcotest.test_case "recv before send" `Quick
            test_chan_recv_before_send;
          Alcotest.test_case "many-to-one fifo" `Quick
            test_chan_many_to_one_fifo;
          QCheck_alcotest.to_alcotest prop_chan_transfers_preserve_order;
        ] );
    ]
