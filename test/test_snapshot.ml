(* Snapshot/restore property tests: for every stateful substrate the
   protocol is [snapshot; perturb; restore] followed by observational
   identity with a twin that was never snapshotted — the snapshot must
   capture everything observable, and restore must not leak anything
   from the perturbation timeline.  Plus the campaign-level property the
   machinery exists for: the fork engine's report is byte-identical to
   the rerun engine's per seed. *)

module Rng = Codesign_ir.Rng
module K = Codesign_sim.Kernel
module EQ = Codesign_sim.Event_queue
module Ch = Codesign_sim.Channel
module N = Codesign_rtl.Netlist
module L = Codesign_rtl.Logic_sim
module Cpu = Codesign_isa.Cpu
module Codegen = Codesign_isa.Codegen
module Asm = Codesign_isa.Asm
module Gen = Codesign_fuzz.Gen
module F = Codesign_fault
module FR = Codesign_obs.Fault_report
module Json = Codesign_obs.Json

let check = Alcotest.check
let fail = Alcotest.fail

(* ------------------------------------------------------------------ *)
(* Cpu                                                                 *)
(* ------------------------------------------------------------------ *)

let cpu_obs c =
  ( Cpu.pc c,
    Cpu.cycles c,
    Cpu.instret c,
    (match Cpu.status c with
    | Cpu.Running -> "R"
    | Cpu.Halted -> "H"
    | Cpu.Trapped m -> "T:" ^ m),
    List.init 8 (fun r -> Cpu.reg c r),
    List.init 64 (fun a -> Cpu.read_mem c (a * 97)) )

let test_cpu_snapshot_restore () =
  let n_checked = ref 0 in
  for seed = 0 to 59 do
    let p = Gen.behavior (Rng.create (31_000 + seed)) in
    match Codegen.compile p with
    | exception Invalid_argument _ -> ()
    | items, _lay -> (
        match Asm.assemble items with
        | exception Invalid_argument _ -> ()
        | img ->
            incr n_checked;
            let a = Cpu.create img.Asm.code in
            let twin = Cpu.create img.Asm.code in
            let rng = Rng.create (77_000 + seed) in
            let prefix = Rng.int rng 400 in
            for _ = 1 to prefix do
              ignore (Cpu.step a);
              ignore (Cpu.step twin)
            done;
            let snap = Cpu.snapshot a in
            (* perturb: run further, scribble on registers and memory *)
            for _ = 1 to 1 + Rng.int rng 300 do
              ignore (Cpu.step a)
            done;
            Cpu.set_reg a 3 12345;
            Cpu.write_mem a 17 999;
            Cpu.restore a snap;
            if cpu_obs a <> cpu_obs twin then
              fail (Printf.sprintf "seed %d: restore differs from twin" seed);
            (* both timelines must evolve identically from here *)
            for _ = 1 to 500 do
              ignore (Cpu.step a);
              ignore (Cpu.step twin)
            done;
            if cpu_obs a <> cpu_obs twin then
              fail
                (Printf.sprintf
                   "seed %d: post-restore evolution differs from twin" seed))
  done;
  check Alcotest.bool "exercised some programs" true (!n_checked > 20)

let test_cpu_restore_size_mismatch () =
  let prog = [| Codesign_isa.Isa.Halt |] in
  let a = Cpu.create ~mem_words:64 prog in
  let b = Cpu.create ~mem_words:128 prog in
  let snap = Cpu.snapshot a in
  match Cpu.restore b snap with
  | exception Invalid_argument _ -> ()
  | () -> fail "expected Invalid_argument on mem-size mismatch"

(* ------------------------------------------------------------------ *)
(* Logic_sim (compiled and interpreted)                                *)
(* ------------------------------------------------------------------ *)

(* Same random feed-forward netlists as the compiled-equivalence tests:
   gates draw operands from already-driven nets. *)
let gen_netlist rng =
  let b = N.Builder.create ~name:"rand" () in
  let n_inputs = 2 + Rng.int rng 4 in
  let inputs = List.init n_inputs (fun i -> Printf.sprintf "in%d" i) in
  let pool = ref (N.Builder.const0 :: N.Builder.const1 :: []) in
  List.iter (fun nm -> pool := N.Builder.input b nm :: !pool) inputs;
  let pick () = Rng.pick rng !pool in
  let n_gates = 5 + Rng.int rng 45 in
  for _ = 1 to n_gates do
    let out =
      match Rng.int rng 9 with
      | 0 -> N.Builder.gate b N.And [ pick (); pick () ]
      | 1 -> N.Builder.gate b N.Or [ pick (); pick () ]
      | 2 -> N.Builder.gate b N.Xor [ pick (); pick () ]
      | 3 -> N.Builder.gate b N.Nand [ pick (); pick () ]
      | 4 -> N.Builder.gate b N.Nor [ pick (); pick () ]
      | 5 -> N.Builder.gate b N.Not [ pick () ]
      | 6 -> N.Builder.gate b N.Buf [ pick () ]
      | 7 -> N.Builder.gate b N.Mux [ pick (); pick (); pick () ]
      | _ -> N.Builder.gate b N.Dff [ pick () ]
    in
    pool := out :: !pool
  done;
  let n_outputs = 1 + Rng.int rng 3 in
  for i = 0 to n_outputs - 1 do
    N.Builder.output b (Printf.sprintf "out%d" i) (pick ())
  done;
  (N.Builder.finish b, inputs)

let drive rng sim ~inputs =
  List.iter (fun nm -> L.set_input sim nm (Rng.int rng 2)) inputs;
  L.clock_cycle sim

let obs_of net sim =
  ( L.cycles_run sim,
    List.map (fun (nm, _) -> (nm, L.output sim nm)) net.N.outputs )

let test_logic_sim_snapshot_restore () =
  let rng = Rng.create 501 in
  for case = 0 to 99 do
    let net, inputs = gen_netlist rng in
    let a = L.create net in
    let twin = L.create net in
    (* identical prefixes (twin consumes the same input stream) *)
    let prefix_rng_a = Rng.create (1000 + case) in
    let prefix_rng_b = Rng.create (1000 + case) in
    for _ = 1 to 1 + Rng.int rng 10 do
      drive prefix_rng_a a ~inputs;
      drive prefix_rng_b twin ~inputs
    done;
    let snap = L.snapshot a in
    let perturb_rng = Rng.create (2000 + case) in
    for _ = 1 to 1 + Rng.int rng 10 do
      drive perturb_rng a ~inputs
    done;
    L.restore a snap;
    if obs_of net a <> obs_of net twin then
      fail (Printf.sprintf "case %d: compiled restore differs" case);
    let suffix_rng_a = Rng.create (3000 + case) in
    let suffix_rng_b = Rng.create (3000 + case) in
    for _ = 1 to 5 do
      drive suffix_rng_a a ~inputs;
      drive suffix_rng_b twin ~inputs
    done;
    if obs_of net a <> obs_of net twin then
      fail (Printf.sprintf "case %d: compiled post-restore differs" case)
  done

let test_interp_snapshot_restore () =
  let rng = Rng.create 733 in
  for case = 0 to 49 do
    let net, inputs = gen_netlist rng in
    let a = L.Interp.create net in
    let snap_inputs = List.map (fun nm -> (nm, Rng.int rng 2)) inputs in
    List.iter (fun (nm, v) -> L.Interp.set_input a nm v) snap_inputs;
    L.Interp.clock_cycle a;
    let snap = L.Interp.snapshot a in
    let before =
      List.map (fun (nm, _) -> (nm, L.Interp.output a nm)) net.N.outputs
    in
    for _ = 1 to 4 do
      List.iter (fun nm -> L.Interp.set_input a nm (Rng.int rng 2)) inputs;
      L.Interp.clock_cycle a
    done;
    L.Interp.restore a snap;
    let after =
      List.map (fun (nm, _) -> (nm, L.Interp.output a nm)) net.N.outputs
    in
    if before <> after then
      fail (Printf.sprintf "case %d: interp restore differs" case);
    check Alcotest.int
      (Printf.sprintf "case %d: cycles rewound" case)
      1
      (L.Interp.cycles_run a)
  done

(* ------------------------------------------------------------------ *)
(* Event_queue: drain order is part of the snapshot                    *)
(* ------------------------------------------------------------------ *)

let test_event_queue_drain_order () =
  let q = EQ.create () in
  let log = ref [] in
  let ev tag = fun () -> log := tag :: !log in
  (* same-time entries must drain in insertion order, also after a
     restore that rewinds a partial drain *)
  EQ.push q ~time:5 (ev "a");
  EQ.push q ~time:3 (ev "b");
  EQ.push q ~time:5 (ev "c");
  EQ.push q ~time:3 (ev "d");
  EQ.push q ~time:4 (ev "e");
  let snap = EQ.snapshot q in
  let drain () =
    log := [];
    let rec go () =
      match EQ.pop q with
      | Some (_, thunk) ->
          thunk ();
          go ()
      | None -> ()
    in
    go ();
    List.rev !log
  in
  let first = drain () in
  check (Alcotest.list Alcotest.string) "stable time order"
    [ "b"; "d"; "e"; "a"; "c" ] first;
  EQ.restore q snap;
  let second = drain () in
  check (Alcotest.list Alcotest.string) "restored drain repeats" first second;
  (* restore into a partially drained queue *)
  EQ.restore q snap;
  ignore (EQ.pop q);
  ignore (EQ.pop q);
  EQ.restore q snap;
  check (Alcotest.list Alcotest.string) "restore after partial drain" first
    (drain ());
  (* seq counter also rewinds: a fresh same-time push after restore
     still lands after the snapshotted entries *)
  EQ.restore q snap;
  EQ.push q ~time:5 (ev "z");
  check
    (Alcotest.list Alcotest.string)
    "post-restore push ties break last"
    [ "b"; "d"; "e"; "a"; "c"; "z" ]
    (drain ())

(* ------------------------------------------------------------------ *)
(* Kernel: fork discipline (drain, snapshot, re-spawn)                 *)
(* ------------------------------------------------------------------ *)

let test_kernel_fork_discipline () =
  (* a world that runs a workload to quiescence, snapshots, then forks
     twice: both forks must see the same clock and produce the same
     trace as each other *)
  let k = K.create () in
  let trace = ref [] in
  let emit tag = trace := (K.now k, tag) :: !trace in
  K.spawn ~name:"warmup" k (fun () ->
      K.wait 10;
      emit "w1";
      K.wait 5;
      emit "w2");
  ignore (K.run ~expect_quiescent:true k);
  check Alcotest.int "quiescent at 15" 15 (K.now k);
  let snap = K.snapshot k in
  let fork tag =
    K.restore k snap;
    trace := [];
    K.spawn ~name:tag k (fun () ->
        emit (tag ^ ".start");
        K.wait 7;
        emit (tag ^ ".end"));
    ignore (K.run ~expect_quiescent:true k);
    (K.now k, List.rev_map snd !trace, List.rev_map fst !trace)
  in
  let t1, tags1, times1 = fork "f" in
  let t2, tags2, times2 = fork "f" in
  check Alcotest.int "forks end at the same time" t1 t2;
  check Alcotest.int "fork resumes at the checkpoint clock" 22 t1;
  check (Alcotest.list Alcotest.string) "fork traces agree" tags1 tags2;
  check (Alcotest.list Alcotest.int) "fork event times agree" times1 times2;
  (* abandoned processes from a fork don't haunt the next one *)
  K.restore k snap;
  K.spawn ~name:"blocked-forever" k (fun () ->
      K.suspend ~register:(fun _ -> ()));
  ignore (K.run ~expect_quiescent:true k);
  K.restore k snap;
  let st = K.run ~expect_quiescent:true k in
  check Alcotest.int "restored world is quiescent" 15 st.K.end_time

let test_channel_snapshot_restore () =
  let k = K.create () in
  let c : int Ch.t = Ch.create ~depth:8 k () in
  K.spawn k (fun () ->
      Ch.send c 1;
      Ch.send c 2;
      Ch.send c 3);
  ignore (K.run ~expect_quiescent:true k);
  let snap = Ch.snapshot c in
  K.spawn k (fun () ->
      check Alcotest.int "recv 1" 1 (Ch.recv c);
      Ch.send c 99);
  ignore (K.run ~expect_quiescent:true k);
  Ch.restore c snap;
  let got = ref [] in
  K.spawn k (fun () ->
      let x = Ch.recv c in
      let y = Ch.recv c in
      let z = Ch.recv c in
      got := [ x; y; z ]);
  ignore (K.run ~expect_quiescent:true k);
  check (Alcotest.list Alcotest.int) "restored buffer contents" [ 1; 2; 3 ]
    !got;
  check Alcotest.int "occupancy rewound" 0 (Ch.occupancy c)

(* ------------------------------------------------------------------ *)
(* Campaign: fork engine == rerun engine, byte for byte                *)
(* ------------------------------------------------------------------ *)

let render r = Json.to_string ~pretty:true (FR.to_json r)

let test_campaign_fork_matches_rerun () =
  List.iter
    (fun seed ->
      let fork =
        F.Campaign.run ~seed ~ops:F.Campaign.quick_ops
          ~engine:F.Campaign.Fork ()
      in
      let rerun =
        F.Campaign.run ~seed ~ops:F.Campaign.quick_ops
          ~engine:F.Campaign.Rerun ()
      in
      check Alcotest.string
        (Printf.sprintf "seed %d: fork report == rerun report" seed)
        (render rerun) (render fork))
    [ 42; 7 ]

let test_campaign_fork_sweep_shapes () =
  (* the fork engine must also agree at a boot-heavy shape (large
     warm-up), where forking actually pays *)
  let a = F.Campaign.sweep ~seed:11 ~ops:24 ~warmup:96 F.Campaign.Fork in
  let b = F.Campaign.sweep ~seed:11 ~ops:24 ~warmup:96 F.Campaign.Rerun in
  if a <> b then fail "boot-heavy sweep cells differ between engines";
  check Alcotest.int "cell count"
    (List.length F.Campaign.mechanisms
    * (1 + List.length F.Campaign.default_rates))
    (List.length a)

let () =
  Alcotest.run "codesign_snapshot"
    [
      ( "cpu",
        [
          Alcotest.test_case "snapshot/perturb/restore vs twin" `Quick
            test_cpu_snapshot_restore;
          Alcotest.test_case "mem-size mismatch rejected" `Quick
            test_cpu_restore_size_mismatch;
        ] );
      ( "logic_sim",
        [
          Alcotest.test_case "compiled snapshot vs twin" `Quick
            test_logic_sim_snapshot_restore;
          Alcotest.test_case "interp snapshot rewinds" `Quick
            test_interp_snapshot_restore;
        ] );
      ( "kernel",
        [
          Alcotest.test_case "event heap drain order" `Quick
            test_event_queue_drain_order;
          Alcotest.test_case "fork discipline" `Quick
            test_kernel_fork_discipline;
          Alcotest.test_case "channel buffer rewinds" `Quick
            test_channel_snapshot_restore;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "fork == rerun (byte-identical)" `Quick
            test_campaign_fork_matches_rerun;
          Alcotest.test_case "fork == rerun (boot-heavy)" `Quick
            test_campaign_fork_sweep_shapes;
        ] );
    ]
