(* lib/resil: retry policies, execution budgets, restart supervision,
   and the graceful-degradation path through the fault campaign and the
   fuzz driver.  The central claims under test: backoff schedules are
   pure functions of the seed; a budget-exhausted run leaves its world
   intact and restorable; a supervisor gives up at its restart-intensity
   cap with the world back at the checkpoint; and a campaign with a
   sabotaged (chaos) task completes with that task degraded while every
   other cell — and the whole report at any job count — stays
   byte-identical. *)

module Policy = Codesign_resil.Policy
module Budget = Codesign_resil.Budget
module Supervisor = Codesign_resil.Supervisor
module K = Codesign_sim.Kernel
module Cpu = Codesign_isa.Cpu
module Isa = Codesign_isa.Isa
module Rng = Codesign_ir.Rng
module Campaign = Codesign_fault.Campaign
module FR = Codesign_obs.Fault_report
module FzR = Codesign_obs.Fuzz_report
module Json = Codesign_obs.Json
module Fuzz = Codesign_fuzz.Fuzz

let check = Alcotest.check
let fail = Alcotest.fail

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec at i = i + nl <= hl && (String.sub hay i nl = needle || at (i + 1)) in
  at 0

(* ------------------------------------------------------------------ *)
(* Policy                                                              *)
(* ------------------------------------------------------------------ *)

let test_policy_schedules () =
  let p = Policy.create ~max_retries:3 ~backoff:(Policy.Linear 8) () in
  check
    Alcotest.(list int)
    "linear ramp is the historic tlm schedule" [ 8; 16; 24 ]
    (Policy.schedule p ());
  let p =
    Policy.create ~max_retries:4
      ~backoff:(Policy.Exponential { base = 8; factor = 2; cap = 20 })
      ()
  in
  check
    Alcotest.(list int)
    "exponential growth saturates at the cap" [ 8; 16; 20; 20 ]
    (Policy.schedule p ());
  check
    Alcotest.(list int)
    "no_backoff never waits" [ 0; 0 ]
    (Policy.schedule (Policy.create ~max_retries:2 ~backoff:Policy.No_backoff ()) ())

let test_policy_jitter_deterministic () =
  let p =
    Policy.create ~max_retries:6
      ~backoff:(Policy.Exponential { base = 8; factor = 2; cap = 512 })
      ~jitter:7 ()
  in
  let sched seed = Policy.schedule p ~rng:(Rng.create seed) () in
  check
    Alcotest.(list int)
    "same seed, same jittered schedule" (sched 42) (sched 42);
  List.iter2
    (fun jittered base ->
      Alcotest.(check bool)
        "jitter adds at most [jitter] on top of the base delay" true
        (jittered >= base && jittered <= base + 7))
    (sched 42)
    (Policy.schedule { p with Policy.jitter = 0 } ())

let test_policy_retry_waits_and_counts () =
  let waits = ref [] and retries = ref 0 in
  let p = Policy.create ~max_retries:3 ~backoff:(Policy.Linear 10) () in
  let body ~attempt = if attempt < 2 then Error "flaky" else Ok attempt in
  match
    Policy.retry p
      ~wait:(fun d -> waits := d :: !waits)
      ~on_retry:(fun ~attempt:_ ~delay:_ -> incr retries)
      body
  with
  | Error _ -> fail "expected eventual success"
  | Ok attempt ->
      check Alcotest.int "succeeded on the third attempt" 2 attempt;
      check Alcotest.int "on_retry per retry" 2 !retries;
      check
        Alcotest.(list int)
        "waited the linear delays, in order" [ 10; 20 ] (List.rev !waits)

let test_policy_retry_exhausts () =
  let p = Policy.create ~max_retries:2 ~backoff:Policy.No_backoff () in
  match Policy.retry p (fun ~attempt -> Error attempt) with
  | Ok _ -> fail "expected exhaustion"
  | Error { Policy.attempts; last_error } ->
      check Alcotest.int "max_retries + 1 attempts" 3 attempts;
      check Alcotest.int "last error is the final attempt's" 2 last_error

(* ------------------------------------------------------------------ *)
(* Budget                                                              *)
(* ------------------------------------------------------------------ *)

(* A fuel-exhausted kernel run charges its window, leaves the kernel
   intact, and a snapshot restore + rerun reproduces an unbudgeted twin
   exactly. *)
let test_budget_kernel_restorable () =
  let build () =
    let k = K.create () in
    let hits = ref 0 in
    let snap = K.snapshot k in
    let spawn_work () =
      K.spawn k (fun () ->
          for _ = 1 to 100 do
            K.wait 10;
            incr hits
          done)
    in
    (k, hits, snap, spawn_work)
  in
  (* twin without a budget *)
  let k', hits', _, spawn' = build () in
  spawn' ();
  ignore (K.run ~expect_quiescent:true k');
  (* budgeted run: exhausts at the fuel bound with events pending *)
  let k, hits, snap, spawn_work = build () in
  spawn_work ();
  (match Budget.run_kernel (Budget.create ~fuel:300 ()) ~expect_quiescent:true k with
  | Budget.Exhausted Budget.Fuel -> ()
  | Budget.Exhausted Budget.Deadline -> fail "expected fuel, not deadline"
  | Budget.Done _ -> fail "expected exhaustion");
  check Alcotest.int "clock charged the full fuel window" 300 (K.now k);
  check Alcotest.bool "work remains queued" true (K.has_pending_events k);
  check Alcotest.int "partial progress is visible" 30 !hits;
  (* rewind and rerun to completion: matches the unbudgeted twin *)
  K.restore k snap;
  hits := 0;
  spawn_work ();
  ignore (K.run ~expect_quiescent:true k);
  check Alcotest.int "restored rerun reaches the twin's clock" (K.now k')
    (K.now k);
  check Alcotest.int "restored rerun reaches the twin's state" !hits' !hits

let test_budget_kernel_done_inside_fuel () =
  let k = K.create () in
  K.spawn k (fun () -> K.wait 50);
  match Budget.run_kernel (Budget.create ~fuel:1000 ()) ~expect_quiescent:true k with
  | Budget.Done _ ->
      check Alcotest.bool "queue drained" false (K.has_pending_events k)
  | Budget.Exhausted _ -> fail "fits comfortably in the budget"

let test_budget_cpu () =
  let spin = [| Isa.J 0 |] in
  (match Budget.run_cpu (Budget.create ~fuel:10_000 ()) (Cpu.create spin) with
  | Budget.Exhausted Budget.Fuel -> ()
  | _ -> fail "an infinite loop must exhaust its fuel");
  let halts = [| Isa.Li (1, 5); Isa.Halt |] in
  match Budget.run_cpu (Budget.create ~fuel:10_000 ()) (Cpu.create halts) with
  | Budget.Done Cpu.Halted -> ()
  | _ -> fail "a halting program finishes inside the budget"

let test_budget_with_fuel_shares_deadline () =
  let b = Budget.create ~fuel:10 () in
  Budget.spend b 10;
  (match Budget.check b with
  | Error Budget.Fuel -> ()
  | _ -> fail "spent budget must report Fuel");
  let fresh = Budget.with_fuel b ~fuel:5 in
  match Budget.check fresh with
  | Ok () -> check Alcotest.bool "fresh allowance" true (Budget.fuel_left fresh = Some 5)
  | Error _ -> fail "with_fuel must grant a fresh allowance"

(* ------------------------------------------------------------------ *)
(* Supervisor                                                          *)
(* ------------------------------------------------------------------ *)

let test_supervisor_gives_up_at_cap () =
  let restores = ref 0 in
  let policy = Policy.create ~max_retries:2 ~backoff:Policy.No_backoff () in
  match
    Supervisor.run ~policy
      ~restore:(fun () -> incr restores)
      (fun ~attempt -> failwith (Printf.sprintf "trap %d" attempt))
  with
  | Supervisor.Completed _ -> fail "expected Gave_up"
  | Supervisor.Gave_up { attempts; errors } ->
      check Alcotest.int "restart-intensity cap honoured" 3 attempts;
      check Alcotest.int "every error reported" 3 (List.length errors);
      check Alcotest.bool "errors in attempt order" true
        (List.map (fun e -> contains ~needle:"trap 0" e) errors
        = [ true; false; false ]);
      check Alcotest.int "restored after every failure, world at checkpoint" 3
        !restores

let test_supervisor_recovers () =
  let restores = ref 0 in
  match
    Supervisor.run
      ~policy:(Policy.create ~max_retries:3 ~backoff:Policy.No_backoff ())
      ~restore:(fun () -> incr restores)
      (fun ~attempt -> if attempt < 2 then Error "not yet" else Ok (attempt * 7))
  with
  | Supervisor.Gave_up _ -> fail "expected recovery"
  | Supervisor.Completed { value; attempts } ->
      check Alcotest.int "value from the successful attempt" 14 value;
      check Alcotest.int "attempts counted" 3 attempts;
      check Alcotest.int "restored only after failures" 2 !restores

(* ------------------------------------------------------------------ *)
(* degraded campaigns                                                  *)
(* ------------------------------------------------------------------ *)

let quick_chaos_report ~jobs chaos =
  Campaign.run ~seed:42 ~ops:Campaign.quick_ops ~jobs ?chaos ()

let is_chaos (c : FR.cell) = contains ~needle:"chaos-" c.FR.mechanism

(* The chaos task traps on every attempt, so its cells come back
   degraded — and the report is still byte-identical at every job
   count, degraded cells included. *)
let test_chaos_campaign_degrades_and_is_jobs_invariant () =
  let r1 = quick_chaos_report ~jobs:1 (Some Campaign.Chaos_trap) in
  let chaos_cells = List.filter is_chaos r1.FR.cells in
  check Alcotest.bool "chaos cells present" true (chaos_cells <> []);
  List.iter
    (fun (c : FR.cell) ->
      match c.FR.degraded with
      | None -> fail "chaos cell must be degraded"
      | Some d ->
          check Alcotest.bool "error names the injected trap" true
            (contains ~needle:"chaos: injected trap" d.Codesign_obs.Degraded.error);
          check Alcotest.int "default policy: 2 restarts = 3 attempts" 3
            d.Codesign_obs.Degraded.attempts)
    chaos_cells;
  let bytes r = Json.to_string (FR.to_json r) in
  List.iter
    (fun jobs ->
      check Alcotest.string
        (Printf.sprintf "report bytes identical at jobs:%d" jobs)
        (bytes r1)
        (bytes (quick_chaos_report ~jobs (Some Campaign.Chaos_trap))))
    [ 2; 4 ]

(* Sabotage is contained: every non-chaos cell is byte-identical to the
   same campaign run without --chaos. *)
let test_chaos_leaves_other_cells_untouched () =
  let with_chaos = quick_chaos_report ~jobs:1 (Some Campaign.Chaos_trap) in
  let without = quick_chaos_report ~jobs:1 None in
  let cell_bytes (c : FR.cell) =
    Json.to_string (FR.to_json { with_chaos with FR.cells = [ c ] })
  in
  check
    Alcotest.(list string)
    "non-chaos cells unchanged by the chaos task"
    (List.map cell_bytes without.FR.cells)
    (List.map cell_bytes
       (List.filter (fun c -> not (is_chaos c)) with_chaos.FR.cells))

(* A hanging cell exhausts its (deterministic, simulated) fuel window
   and degrades with a fuel error instead of wedging the sweep. *)
let test_chaos_hang_exhausts_fuel () =
  let cells =
    Campaign.sweep ~seed:42 ~ops:Campaign.quick_ops ~cell_fuel:5_000_000
      ~chaos:Campaign.Chaos_hang Campaign.Fork
  in
  let hung = List.filter is_chaos cells in
  check Alcotest.bool "hang cells present" true (hung <> []);
  List.iter
    (fun (c : FR.cell) ->
      match c.FR.degraded with
      | Some d ->
          check Alcotest.bool "fuel exhaustion reported" true
            (contains ~needle:"fuel" d.Codesign_obs.Degraded.error)
      | None -> fail "hang cell must be degraded")
    hung;
  List.iter
    (fun (c : FR.cell) ->
      check Alcotest.bool "healthy cells complete within the fuel window" true
        (c.FR.degraded = None))
    (List.filter (fun c -> not (is_chaos c)) cells)

(* ------------------------------------------------------------------ *)
(* degraded fuzzing                                                    *)
(* ------------------------------------------------------------------ *)

(* A raising harness degrades its cases instead of aborting the corpus,
   and the degraded report is identical at any job count (wall time
   aside). *)
let test_fuzz_degrades_on_raising_harness () =
  let boom _ = failwith "injected harness fault" in
  let run jobs =
    { (Fuzz.run ~seed:42 ~count:24 ~jobs ~transform_asm:boom ()) with
      FzR.wall_s = 0.0 }
  in
  let r = run 1 in
  check Alcotest.bool "behaviour cases degraded" true (r.FzR.degraded <> []);
  List.iter
    (fun ((_, d) : int * Codesign_obs.Degraded.t) ->
      check Alcotest.bool "error carries the harness fault" true
        (contains ~needle:"injected harness fault" d.Codesign_obs.Degraded.error);
      check Alcotest.int "no_retry: one attempt" 1
        d.Codesign_obs.Degraded.attempts)
    r.FzR.degraded;
  check Alcotest.int "non-behaviour cases still complete"
    (r.FzR.ladder_cases + r.FzR.taskgraph_cases)
    (24 - List.length r.FzR.degraded - r.FzR.behavior_cases);
  if run 3 <> r then fail "degraded fuzz report must be jobs-invariant"

let () =
  Alcotest.run "codesign_resil"
    [
      ( "policy",
        [
          Alcotest.test_case "backoff schedules" `Quick test_policy_schedules;
          Alcotest.test_case "jitter is a pure function of the seed" `Quick
            test_policy_jitter_deterministic;
          Alcotest.test_case "retry waits and counts" `Quick
            test_policy_retry_waits_and_counts;
          Alcotest.test_case "retry exhausts at the cap" `Quick
            test_policy_retry_exhausts;
        ] );
      ( "budget",
        [
          Alcotest.test_case "exhausted kernel run is restorable" `Quick
            test_budget_kernel_restorable;
          Alcotest.test_case "drained queue is Done" `Quick
            test_budget_kernel_done_inside_fuel;
          Alcotest.test_case "cpu fuel" `Quick test_budget_cpu;
          Alcotest.test_case "with_fuel refreshes the allowance" `Quick
            test_budget_with_fuel_shares_deadline;
        ] );
      ( "supervisor",
        [
          Alcotest.test_case "gives up at the restart-intensity cap" `Quick
            test_supervisor_gives_up_at_cap;
          Alcotest.test_case "recovers after restores" `Quick
            test_supervisor_recovers;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "chaos campaign degrades, jobs-invariant" `Quick
            test_chaos_campaign_degrades_and_is_jobs_invariant;
          Alcotest.test_case "chaos leaves other cells untouched" `Quick
            test_chaos_leaves_other_cells_untouched;
          Alcotest.test_case "hanging cell exhausts fuel" `Quick
            test_chaos_hang_exhausts_fuel;
          Alcotest.test_case "fuzz degrades on a raising harness" `Quick
            test_fuzz_degrades_on_raising_harness;
        ] );
    ]
