(* Domain-parallel == serial.  The shared Domain_pool merges results by
   task index and folds worker kernel counters back into the calling
   domain, so every parallel path — the fault-campaign sweep, the fuzz
   corpus, the EXP-3M mixed-level grid — must be observationally
   identical to its serial twin: byte-identical report JSON and table
   checksums, jobs-independent counter totals, and worker exceptions
   that surface as a named error instead of a hang. *)

module Pool = Codesign_par.Domain_pool
module K = Codesign_sim.Kernel
module Rng = Codesign_ir.Rng
module Campaign = Codesign_fault.Campaign
module Fuzz = Codesign_fuzz.Fuzz
module FR = Codesign_obs.Fault_report
module FzR = Codesign_obs.Fuzz_report
module Json = Codesign_obs.Json
module Checksum = Codesign_obs.Checksum
module Exp_fig3m = Codesign_experiments.Exp_fig3m
module Registry = Codesign_experiments.Registry

let check = Alcotest.check

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec at i = i + nl <= hl && (String.sub hay i nl = needle || at (i + 1)) in
  at 0

(* ------------------------------------------------------------------ *)
(* the pool itself                                                     *)
(* ------------------------------------------------------------------ *)

(* Order preserved by index under a workload whose per-task cost varies
   wildly (shuffled sizes scramble completion order across workers) —
   no sleeps, just unequal compute. *)
let test_pool_order_preserved () =
  let n = 200 in
  let rng = Rng.create 7 in
  let sizes = Array.init n (fun _ -> Rng.int rng 20_000) in
  let f i =
    let acc = ref (i * 31) in
    for j = 1 to sizes.(i) do
      acc := (!acc + (j * i)) land 0xFFFF
    done;
    (i, !acc)
  in
  let tasks = Array.init n (fun i -> i) in
  let serial = Array.map f tasks in
  List.iter
    (fun jobs ->
      let par = Pool.map ~jobs f tasks in
      check Alcotest.bool
        (Printf.sprintf "jobs:%d result equals Array.map, in index order" jobs)
        true (par = serial);
      Array.iteri (fun i (j, _) -> check Alcotest.int "slot i holds task i" i j)
        par)
    [ 1; 2; 4; 7 ]

(* An exception inside a worker must not hang the pool: every domain is
   joined and ALL failures come back as one Worker_error, in index
   order, each naming its task. *)
let test_pool_worker_error_surfaces () =
  match
    Pool.map ~jobs:4
      ~name:(fun i -> Printf.sprintf "task-%d" i)
      (fun i -> if i = 37 || i = 61 then failwith "boom" else i)
      (Array.init 100 (fun i -> i))
  with
  | _ -> Alcotest.fail "expected Worker_error"
  | exception Pool.Worker_error failures ->
      check Alcotest.int "both failures collected" 2 (List.length failures);
      check Alcotest.(list int) "failing indices in order" [ 37; 61 ]
        (List.map (fun (f : Pool.failure) -> f.Pool.index) failures);
      check
        Alcotest.(list string)
        "task labels" [ "task-37"; "task-61" ]
        (List.map (fun (f : Pool.failure) -> f.Pool.task) failures);
      List.iter
        (fun (f : Pool.failure) ->
          check Alcotest.bool "message carries the original exception" true
            (contains ~needle:"boom" f.Pool.message);
          check Alcotest.int "no retries by default" 1 f.Pool.attempts)
        failures

(* Same surfacing contract on the serial path, so error behaviour does
   not depend on the job count. *)
let test_pool_worker_error_serial () =
  match
    Pool.map ~jobs:1
      (fun i -> if i = 2 then raise Exit else i)
      [| 0; 1; 2; 3 |]
  with
  | _ -> Alcotest.fail "expected Worker_error"
  | exception Pool.Worker_error [ { Pool.index; task; message; attempts } ] ->
      check Alcotest.int "failing index" 2 index;
      check Alcotest.string "unnamed task" "" task;
      check Alcotest.bool "message names the exception" true
        (contains ~needle:"Exit" message);
      check Alcotest.int "single attempt" 1 attempts
  | exception Pool.Worker_error _ ->
      Alcotest.fail "expected exactly one failure"

(* map_result keeps every outcome: successes in place, failures as
   structured records, with in-place retries counted. *)
let test_pool_map_result_retries () =
  let tries = Array.make 4 0 in
  let f i =
    tries.(i) <- tries.(i) + 1;
    if i = 1 && tries.(i) <= 2 then failwith "flaky"
    else if i = 3 then failwith "always"
    else i * 10
  in
  let out =
    Pool.map_result ~jobs:1 ~retries:2
      ~name:(fun i -> Printf.sprintf "t%d" i)
      f
      (Array.init 4 (fun i -> i))
  in
  (match out.(0) with
  | Ok 0 -> ()
  | _ -> Alcotest.fail "task 0 should succeed");
  (match out.(1) with
  | Ok 10 -> check Alcotest.int "task 1 succeeded on 3rd attempt" 3 tries.(1)
  | _ -> Alcotest.fail "task 1 should succeed after retries");
  (match out.(3) with
  | Error { Pool.index; task; message; attempts } ->
      check Alcotest.int "failure index" 3 index;
      check Alcotest.string "failure task" "t3" task;
      check Alcotest.bool "failure message" true
        (contains ~needle:"always" message);
      check Alcotest.int "all attempts used" 3 attempts
  | Ok _ -> Alcotest.fail "task 3 should fail")

(* ------------------------------------------------------------------ *)
(* per-domain kernel-counter merge                                     *)
(* ------------------------------------------------------------------ *)

let net_workload i () =
  let k = K.create () in
  for p = 0 to 7 do
    K.spawn k (fun () ->
        for _ = 1 to 40 do
          K.wait (1 + ((i + p) mod 5))
        done)
  done;
  ignore (K.run k)

let totals_delta f =
  let before = K.domain_totals () in
  f ();
  K.diff_totals ~after:(K.domain_totals ()) ~before

let check_totals msg (a : K.domain_totals) (b : K.domain_totals) =
  check Alcotest.int (msg ^ ": events") a.K.d_events b.K.d_events;
  check Alcotest.int (msg ^ ": activations") a.K.d_activations
    b.K.d_activations;
  check Alcotest.int (msg ^ ": scheduled") a.K.d_scheduled b.K.d_scheduled;
  check Alcotest.int (msg ^ ": kernels") a.K.d_kernels b.K.d_kernels

(* merge_domain_totals adds exactly the delta it is given *)
let test_merge_totals_adds () =
  let d =
    { K.d_events = 3; d_activations = 5; d_scheduled = 7; d_kernels = 2 }
  in
  let delta = totals_delta (fun () -> K.merge_domain_totals d) in
  check_totals "merged delta" d delta

(* The same networks run on two domains must leave the calling domain's
   cumulative totals exactly where the serial run leaves them: the
   worker deltas are measured remotely and merged back. *)
let test_dls_totals_parallel_equal_serial () =
  let tasks = Array.init 6 (fun i -> i) in
  let serial =
    totals_delta (fun () -> Array.iter (fun i -> net_workload i ()) tasks)
  in
  check Alcotest.bool "workload actually runs kernels" true
    (serial.K.d_events > 0 && serial.K.d_kernels = 6);
  let par =
    totals_delta (fun () ->
        ignore (Pool.map ~jobs:2 (fun i -> net_workload i ()) tasks))
  in
  check_totals "two domains vs serial" serial par;
  let par4 =
    totals_delta (fun () ->
        ignore (Pool.map ~jobs:4 (fun i -> net_workload i ()) tasks))
  in
  check_totals "four domains vs serial" serial par4

(* ------------------------------------------------------------------ *)
(* Rng split                                                           *)
(* ------------------------------------------------------------------ *)

(* Splitting is deterministic: equal-seed parents produce equal
   children, and the split leaves the parent stream where an identical
   twin's is. *)
let test_rng_split_deterministic () =
  for seed = 0 to 99 do
    let a = Rng.create seed and b = Rng.create seed in
    let ca = Rng.split a and cb = Rng.split b in
    for _ = 1 to 100 do
      check Alcotest.int "child streams equal" (Rng.int ca max_int)
        (Rng.int cb max_int);
      check Alcotest.int "parent streams equal after split"
        (Rng.int a max_int) (Rng.int b max_int)
    done
  done

(* Parent and child streams never collide in the first 10k draws, for
   100 seeds: the split really is an independent stream, which is what
   lets a parallel consumer hand each shard its own generator. *)
let test_rng_split_independent () =
  let draws = 10_000 in
  for seed = 0 to 99 do
    let parent = Rng.create seed in
    let child = Rng.split parent in
    let seen = Hashtbl.create (2 * draws) in
    for _ = 1 to draws do
      Hashtbl.replace seen (Rng.int parent max_int) ()
    done;
    for _ = 1 to draws do
      if Hashtbl.mem seen (Rng.int child max_int) then
        Alcotest.fail
          (Printf.sprintf "seed %d: split stream overlaps its parent" seed)
    done
  done

(* ------------------------------------------------------------------ *)
(* byte-identity: parallel == serial                                   *)
(* ------------------------------------------------------------------ *)

let fault_json r = Json.to_string (FR.to_json r)

let test_campaign_parallel_identity () =
  List.iter
    (fun seed ->
      let serial = Campaign.run ~seed ~ops:48 ~jobs:1 () in
      let par = Campaign.run ~seed ~ops:48 ~jobs:4 () in
      check Alcotest.string
        (Printf.sprintf "seed %d: Fault_report JSON byte-identical" seed)
        (fault_json serial) (fault_json par))
    [ 42; 7 ]

let test_campaign_rerun_parallel_identity () =
  let serial = Campaign.sweep ~seed:11 ~ops:32 Campaign.Rerun in
  let par = Campaign.sweep ~seed:11 ~ops:32 ~jobs:3 Campaign.Rerun in
  check Alcotest.bool "rerun-engine sweep cells identical" true (serial = par)

(* wall_s is the one honest wall-clock field; zero it on both sides and
   the rest of the report must match byte-for-byte. *)
let fuzz_json r = Json.to_string (FzR.to_json { r with FzR.wall_s = 0.0 })

let test_fuzz_parallel_identity () =
  List.iter
    (fun (seed, count, fault) ->
      let serial = Fuzz.run ~seed ~count ~fault ~jobs:1 () in
      let par = Fuzz.run ~seed ~count ~fault ~jobs:4 () in
      check Alcotest.string
        (Printf.sprintf "seed %d: Fuzz_report JSON byte-identical" seed)
        (fuzz_json serial) (fuzz_json par))
    [ (42, 64, false); (5, 48, true) ]

let test_exp3m_parallel_identity () =
  let serial = Exp_fig3m.run ~quick:true ~jobs:1 () in
  let par = Exp_fig3m.run ~quick:true ~jobs:4 () in
  check Alcotest.string "EXP-3M table byte-identical" serial par;
  check Alcotest.string "EXP-3M table checksum identical"
    (Checksum.of_string serial) (Checksum.of_string par);
  (* and through the registry entry the CLI/bench use *)
  match Registry.find "exp3m" with
  | None -> Alcotest.fail "exp3m missing from registry"
  | Some e ->
      check Alcotest.string "registry-threaded jobs produce the same table"
        serial
        (e.Registry.run ~quick:true ~jobs:2 ())

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "order preserved by index" `Quick
            test_pool_order_preserved;
          Alcotest.test_case "worker exception surfaces, no hang" `Quick
            test_pool_worker_error_surfaces;
          Alcotest.test_case "serial path wraps errors identically" `Quick
            test_pool_worker_error_serial;
          Alcotest.test_case "map_result retries in place, keeps failures"
            `Quick test_pool_map_result_retries;
        ] );
      ( "kernel-counters",
        [
          Alcotest.test_case "merge adds the delta" `Quick
            test_merge_totals_adds;
          Alcotest.test_case "two-domain totals equal serial" `Quick
            test_dls_totals_parallel_equal_serial;
        ] );
      ( "rng-split",
        [
          Alcotest.test_case "split is deterministic" `Quick
            test_rng_split_deterministic;
          Alcotest.test_case "split streams never overlap (10k x 100 seeds)"
            `Quick test_rng_split_independent;
        ] );
      ( "identity",
        [
          Alcotest.test_case "fault campaign jobs:4 == jobs:1" `Quick
            test_campaign_parallel_identity;
          Alcotest.test_case "rerun-engine sweep jobs:3 == jobs:1" `Quick
            test_campaign_rerun_parallel_identity;
          Alcotest.test_case "fuzz corpus jobs:4 == jobs:1" `Quick
            test_fuzz_parallel_identity;
          Alcotest.test_case "EXP-3M grid jobs:4 == jobs:1" `Quick
            test_exp3m_parallel_identity;
        ] );
    ]
