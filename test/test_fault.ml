(* Fault-injection library tests: determinism of the campaign report,
   watchdog single-bite semantics, TMR masking of any single replica
   fault, bounded retry recovering transient bus faults, and the
   reliable-transport wrapper delivering an intact stream over a lossy
   medium. *)

module K = Codesign_sim.Kernel
module M = Codesign_bus.Memory_map
module Bus = Codesign_bus.Bus
module N = Codesign_rtl.Netlist
module L = Codesign_rtl.Logic_sim
module Json = Codesign_obs.Json
module FR = Codesign_obs.Fault_report
module F = Codesign_fault

let check = Alcotest.check
let fail = Alcotest.fail

(* ------------------------------------------------------------------ *)
(* Determinism                                                         *)
(* ------------------------------------------------------------------ *)

let test_campaign_byte_identical () =
  (* the acceptance bar for the whole library: the campaign is a pure
     function of its seed, down to the serialized byte *)
  let render seed =
    Json.to_string ~pretty:true
      (FR.to_json (F.Campaign.run ~seed ~ops:F.Campaign.quick_ops ()))
  in
  check Alcotest.string "seed 42 replays byte-identically" (render 42)
    (render 42);
  check Alcotest.string "seed 7 replays byte-identically" (render 7) (render 7);
  check Alcotest.bool "different seeds differ" true (render 42 <> render 7)

let test_injector_stream_deterministic () =
  let draws seed =
    let inj = F.Injector.create ~rate:0.3 ~seed () in
    List.init 200 (fun _ -> F.Injector.fires inj)
  in
  check Alcotest.bool "same seed, same decisions" true (draws 9 = draws 9);
  check Alcotest.bool "decision stream is not constant" true
    (List.exists Fun.id (draws 9) && not (List.for_all Fun.id (draws 9)))

(* ------------------------------------------------------------------ *)
(* Watchdog                                                            *)
(* ------------------------------------------------------------------ *)

let test_watchdog_one_bite_per_hang () =
  let k = K.create () in
  let bite_times = ref [] in
  let wd =
    F.Watchdog.create k ~timeout:100 ~on_bite:(fun _ ->
        bite_times := K.now k :: !bite_times)
  in
  K.spawn ~name:"workload" k (fun () ->
      F.Watchdog.kick wd;
      (* hang 1: silent for 900 cycles — far past the timeout *)
      K.wait 900;
      F.Watchdog.kick wd;
      (* hang 2 *)
      K.wait 900;
      F.Watchdog.stop wd);
  ignore (K.run ~expect_quiescent:true k);
  (* one bite per hang, however long each hang lasted *)
  check
    Alcotest.(list int)
    "bites at kick+timeout only" [ 100; 1000 ]
    (List.rev !bite_times);
  check Alcotest.int "bite counter" 2 (F.Watchdog.bites wd)

let test_watchdog_kick_defers_bite () =
  let k = K.create () in
  let wd = F.Watchdog.create k ~timeout:50 ~on_bite:(fun _ -> ()) in
  K.spawn ~name:"live" k (fun () ->
      for _ = 1 to 20 do
        F.Watchdog.kick wd;
        K.wait 10
      done;
      F.Watchdog.stop wd);
  ignore (K.run ~expect_quiescent:true k);
  check Alcotest.int "a live workload is never bitten" 0 (F.Watchdog.bites wd)

(* ------------------------------------------------------------------ *)
(* TMR                                                                 *)
(* ------------------------------------------------------------------ *)

let eval_all n =
  let sim = L.create n in
  Array.init 16 (fun v ->
      List.iteri
        (fun j (nm, _) -> L.set_input sim nm ((v lsr j) land 1))
        n.N.inputs;
      L.eval sim;
      L.output sim "hit")

let test_tmr_masks_any_single_replica_fault () =
  let base = N.decoder ~width:4 ~match_value:9 () in
  let golden = eval_all base in
  let tmr = F.Tmr.triplicate base in
  check Alcotest.bool "tmr is transparent when fault-free" true
    (eval_all tmr = golden);
  let bound = F.Tmr.replica_gates base in
  for g = 0 to bound - 1 do
    List.iter
      (fun value ->
        let out = eval_all (F.Tmr.stuck_at tmr ~gate:g ~value) in
        if out <> golden then
          fail
            (Printf.sprintf "stuck-at-%d on replica gate %d escaped the voter"
               value g))
      [ 0; 1 ]
  done

let test_unprotected_fault_visible () =
  (* sanity for the masking claim: the same faults on the *unprotected*
     netlist are frequently visible, so the TMR sweep is not vacuous *)
  let base = N.decoder ~width:4 ~match_value:9 () in
  let golden = eval_all base in
  let visible = ref 0 in
  List.iteri
    (fun g _ ->
      List.iter
        (fun value ->
          if eval_all (F.Tmr.stuck_at base ~gate:g ~value) <> golden then
            incr visible)
        [ 0; 1 ])
    base.N.gates;
  check Alcotest.bool "most bare faults are observable" true (!visible > 0)

(* ------------------------------------------------------------------ *)
(* Bounded retry over a faulty bus                                     *)
(* ------------------------------------------------------------------ *)

let test_retry_recovers_transient_bus_faults () =
  let k = K.create () in
  (* short stuck-at windows so that backoff (32 cycles/attempt) always
     outlives a persistent fault: every fault is transient relative to
     the retry budget, and recovery must therefore be total *)
  let inj = F.Injector.create ~rate:0.15 ~seed:5 () in
  let map = M.create [ M.ram ~name:"ram" ~base:0 ~size:256 ] in
  let fb =
    F.Faulty_bus.create ~timeout:48 ~stuck_cycles:20 k inj
      (Codesign_bus.Transport.tlm k map)
  in
  let budget = 6 and backoff = 32 in
  let with_retry op =
    let rec go n =
      if n > budget then fail "retry budget exhausted on a transient fault"
      else
        match op () with
        | Ok v -> (v, n)
        | Error _ ->
            K.wait (backoff * (n + 1));
            go (n + 1)
    in
    go 0
  in
  let retried = ref 0 in
  K.spawn ~name:"master" k (fun () ->
      for i = 0 to 63 do
        let (), w = with_retry (fun () -> F.Faulty_bus.write fb i (i * 3)) in
        let v, r = with_retry (fun () -> F.Faulty_bus.read fb i) in
        retried := !retried + w + r;
        check Alcotest.int (Printf.sprintf "word %d survives" i) (i * 3) v
      done);
  ignore (K.run ~until:2_000_000 ~expect_quiescent:true k);
  check Alcotest.bool "faults were actually injected" true
    (F.Injector.injected inj > 0);
  check Alcotest.bool "recovery exercised the retry path" true (!retried > 0)

(* ------------------------------------------------------------------ *)
(* Reliable transport over a lossy channel                             *)
(* ------------------------------------------------------------------ *)

let test_transport_delivers_in_order () =
  let k = K.create () in
  let inj = F.Injector.create ~rate:0.12 ~seed:11 () in
  let ch = F.Faulty_chan.create k inj () in
  let sent = List.init 40 (fun i -> (i, (i * 7) + 1)) in
  let got = ref [] in
  K.spawn ~name:"rx" k (fun () ->
      let rec loop () =
        match F.Faulty_chan.recv ch with
        | Some (idx, v) ->
            got := (idx, v) :: !got;
            loop ()
        | None -> ()
      in
      loop ());
  K.spawn ~name:"tx" k (fun () ->
      List.iter
        (fun (idx, v) ->
          if not (F.Faulty_chan.send ch ~idx v) then
            fail (Printf.sprintf "frame %d exceeded its retry budget" idx))
        sent;
      F.Faulty_chan.close ch);
  ignore (K.run ~until:10_000_000 ~expect_quiescent:true k);
  check
    Alcotest.(list (pair int int))
    "stream delivered intact and in order" sent (List.rev !got);
  check Alcotest.bool "the medium actually misbehaved" true
    (F.Injector.injected inj > 0 && F.Faulty_chan.retransmissions ch > 0)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "codesign_fault"
    [
      ( "determinism",
        [
          Alcotest.test_case "campaign byte-identical" `Quick
            test_campaign_byte_identical;
          Alcotest.test_case "injector stream" `Quick
            test_injector_stream_deterministic;
        ] );
      ( "watchdog",
        [
          Alcotest.test_case "one bite per hang" `Quick
            test_watchdog_one_bite_per_hang;
          Alcotest.test_case "kicks defer the bite" `Quick
            test_watchdog_kick_defers_bite;
        ] );
      ( "tmr",
        [
          Alcotest.test_case "masks any single replica fault" `Quick
            test_tmr_masks_any_single_replica_fault;
          Alcotest.test_case "bare faults visible" `Quick
            test_unprotected_fault_visible;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "retry recovers transient bus faults" `Quick
            test_retry_recovers_transient_bus_faults;
          Alcotest.test_case "transport delivers over lossy medium" `Quick
            test_transport_delivers_in_order;
        ] );
    ]
