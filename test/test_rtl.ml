(* Tests for the codesign_rtl library: netlists, logic simulation,
   FSMDs, and the sharing-aware area estimator. *)

open Codesign_rtl
module N = Netlist
module F = Fsmd
module E = Estimate
module C = Codesign_ir.Cdfg

let check = Alcotest.check
let fail = Alcotest.fail

let astring_contains s needle =
  let nl = String.length needle and sl = String.length s in
  let rec at i = i + nl <= sl && (String.sub s i nl = needle || at (i + 1)) in
  at 0

(* ------------------------------------------------------------------ *)
(* Netlist construction and validation                                 *)
(* ------------------------------------------------------------------ *)

let full_adder () =
  let b = N.Builder.create ~name:"fa" () in
  let a = N.Builder.input b "a" in
  let bi = N.Builder.input b "b" in
  let ci = N.Builder.input b "cin" in
  let axb = N.Builder.xor2 b a bi in
  let s = N.Builder.xor2 b axb ci in
  let c1 = N.Builder.and2 b a bi in
  let c2 = N.Builder.and2 b axb ci in
  let co = N.Builder.or2 b c1 c2 in
  N.Builder.output b "sum" s;
  N.Builder.output b "cout" co;
  N.Builder.finish b

let test_netlist_build () =
  let n = full_adder () in
  check Alcotest.int "gates" 5 (N.gate_count n);
  check Alcotest.int "dffs" 0 (N.dff_count n);
  check Alcotest.bool "comb dag" true (N.is_combinational_dag n);
  check Alcotest.bool "area positive" true (N.area n > 0)

let test_netlist_validation () =
  let raw =
    {
      N.name = "bad";
      n_nets = 4;
      gates =
        [
          { N.kind = N.Not; inputs = [ 2 ]; output = 3 };
          { N.kind = N.Buf; inputs = [ 2 ]; output = 3 };
        ];
      inputs = [ ("i", 2) ];
      outputs = [ ("o", 3) ];
    }
  in
  (try
     N.validate raw;
     fail "expected multiple-driver error"
   with Invalid_argument _ -> ());
  let undriven =
    {
      N.name = "bad2";
      n_nets = 4;
      gates = [];
      inputs = [ ("i", 2) ];
      outputs = [ ("o", 3) ];
    }
  in
  try
    N.validate undriven;
    fail "expected undriven output error"
  with Invalid_argument _ -> ()

let test_full_adder_truth_table () =
  let sim = Logic_sim.create (full_adder ()) in
  for a = 0 to 1 do
    for b = 0 to 1 do
      for c = 0 to 1 do
        Logic_sim.set_input sim "a" a;
        Logic_sim.set_input sim "b" b;
        Logic_sim.set_input sim "cin" c;
        Logic_sim.eval sim;
        let total = a + b + c in
        check Alcotest.int
          (Printf.sprintf "sum %d%d%d" a b c)
          (total land 1)
          (Logic_sim.output sim "sum");
        check Alcotest.int
          (Printf.sprintf "cout %d%d%d" a b c)
          (total lsr 1)
          (Logic_sim.output sim "cout")
      done
    done
  done

let test_decoder () =
  let d = N.decoder ~width:4 ~match_value:0b1010 () in
  let sim = Logic_sim.create d in
  for v = 0 to 15 do
    for bit = 0 to 3 do
      Logic_sim.set_input sim (Printf.sprintf "a%d" bit) ((v lsr bit) land 1)
    done;
    Logic_sim.eval sim;
    check Alcotest.int
      (Printf.sprintf "decode %d" v)
      (if v = 0b1010 then 1 else 0)
      (Logic_sim.output sim "hit")
  done

let test_decoder_errors () =
  (try
     ignore (N.decoder ~width:0 ~match_value:0 ());
     fail "width 0"
   with Invalid_argument _ -> ());
  try
    ignore (N.decoder ~width:2 ~match_value:9 ());
    fail "value too wide"
  with Invalid_argument _ -> ()

let test_dff_counter () =
  (* 2-bit counter from dffs: q0' = !q0, q1' = q1 xor q0; built as a raw
     record because the feedback loop through the flops needs nets to be
     named before their drivers exist. *)
  let raw =
    {
      N.name = "cnt";
      n_nets = 8;
      gates =
        [
          (* net 2 = q0, net 3 = q1, net 4 = !q0, net 5 = q1 xor q0 *)
          { N.kind = N.Dff; inputs = [ 4 ]; output = 2 };
          { N.kind = N.Dff; inputs = [ 5 ]; output = 3 };
          { N.kind = N.Not; inputs = [ 2 ]; output = 4 };
          { N.kind = N.Xor; inputs = [ 3; 2 ]; output = 5 };
        ];
      inputs = [];
      outputs = [ ("q0", 2); ("q1", 3) ];
    }
  in
  N.validate raw;
  check Alcotest.bool "comb dag (dff breaks cycle)" true
    (N.is_combinational_dag raw);
  let sim = Logic_sim.create raw in
  let states = ref [] in
  for _ = 1 to 5 do
    Logic_sim.clock_cycle sim;
    states :=
      ((2 * Logic_sim.output sim "q1") + Logic_sim.output sim "q0")
      :: !states
  done;
  check (Alcotest.list Alcotest.int) "counting" [ 1; 2; 3; 0; 1 ]
    (List.rev !states);
  check Alcotest.int "cycles_run" 5 (Logic_sim.cycles_run sim);
  Logic_sim.reset sim;
  Logic_sim.eval sim;
  check Alcotest.int "reset q0" 0 (Logic_sim.output sim "q0")

let test_comb_cycle_rejected () =
  let raw =
    {
      N.name = "cyc";
      n_nets = 4;
      gates =
        [
          { N.kind = N.Not; inputs = [ 3 ]; output = 2 };
          { N.kind = N.Not; inputs = [ 2 ]; output = 3 };
        ];
      inputs = [];
      outputs = [ ("o", 2) ];
    }
  in
  check Alcotest.bool "not a comb dag" false (N.is_combinational_dag raw);
  try
    ignore (Logic_sim.create raw);
    fail "expected combinational-cycle rejection"
  with Invalid_argument _ -> ()

let test_run_vectors () =
  let b = N.Builder.create () in
  let x = N.Builder.input b "x" in
  let y = N.Builder.input b "y" in
  N.Builder.output b "z" (N.Builder.and2 b x y);
  let sim = Logic_sim.create (N.Builder.finish b) in
  let waves =
    Logic_sim.run_vectors sim ~inputs:[ "x"; "y" ]
      [ [ 0; 0 ]; [ 1; 0 ]; [ 1; 1 ]; [ 0; 1 ] ]
  in
  check (Alcotest.list Alcotest.int) "and wave" [ 0; 0; 1; 0 ]
    (List.assoc "z" waves)

let toggle_net () =
  (* q' = !q: a 1-bit toggle whose output depends on carried flop state *)
  {
    N.name = "tgl";
    n_nets = 4;
    gates =
      [
        { N.kind = N.Dff; inputs = [ 3 ]; output = 2 };
        { N.kind = N.Not; inputs = [ 2 ]; output = 3 };
      ];
    inputs = [];
    outputs = [ ("q", 2) ];
  }

let test_run_vectors_resets_state () =
  (* regression: run_vectors used to silently carry DFF/net state across
     calls, so the second experiment started mid-waveform *)
  let sim = Logic_sim.create (toggle_net ()) in
  let vecs = [ []; []; [] ] in
  let first = Logic_sim.run_vectors sim ~inputs:[] vecs in
  check (Alcotest.list Alcotest.int) "first run toggles" [ 1; 0; 1 ]
    (List.assoc "q" first);
  let second = Logic_sim.run_vectors sim ~inputs:[] vecs in
  check (Alcotest.list Alcotest.int) "second run is independent" [ 1; 0; 1 ]
    (List.assoc "q" second);
  check Alcotest.int "cycle counter restarts" 3 (Logic_sim.cycles_run sim);
  (* opting out carries the latched state over *)
  let carried = Logic_sim.run_vectors ~reset:false sim ~inputs:[] vecs in
  check (Alcotest.list Alcotest.int) "~reset:false continues" [ 0; 1; 0 ]
    (List.assoc "q" carried)

let test_unknown_signal_names () =
  let sim = Logic_sim.create (toggle_net ()) in
  (try
     Logic_sim.set_input sim "bogus" 1;
     fail "expected Invalid_argument"
   with Invalid_argument m ->
     check Alcotest.bool "set_input names the signal" true
       (astring_contains m "bogus" && astring_contains m "tgl"));
  try
    ignore (Logic_sim.output sim "nope");
    fail "expected Invalid_argument"
  with Invalid_argument m ->
    check Alcotest.bool "output names the signal" true
      (astring_contains m "nope")

let test_hdl_out_netlist () =
  let s = Hdl_out.netlist (full_adder ()) in
  check Alcotest.bool "module header" true
    (String.length s > 20 && String.sub s 0 9 = "module fa")

(* ------------------------------------------------------------------ *)
(* Estimate                                                            *)
(* ------------------------------------------------------------------ *)

let test_fu_need () =
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "need"
    [ ("add", 2); ("mul", 1) ]
    (E.fu_need [ ("add", 7); ("mul", 2); ("sub", 0) ]);
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "merge duplicates"
    [ ("add", 3) ]
    (E.fu_need [ ("add", 5); ("add", 4) ])

let test_standalone_area () =
  let a = E.standalone_area [ ("mul", 4) ] in
  (* 1 mul FU (4/4) + overhead *)
  check Alcotest.int "one mul" (320 + E.default_task_overhead) a;
  let b = E.standalone_area [ ("mul", 5) ] in
  check Alcotest.int "two muls" (640 + E.default_task_overhead) b

let test_incremental_sharing () =
  let inc = E.Incremental.create () in
  let c1 = E.Incremental.add inc ~id:0 [ ("mul", 4); ("add", 4) ] in
  check Alcotest.int "first task pays full" (320 + 32 + 64) c1;
  (* second task with same mix shares everything but overhead *)
  let c2 = E.Incremental.add inc ~id:1 [ ("mul", 4); ("add", 4) ] in
  check Alcotest.int "second task pays only overhead" 64 c2;
  (* a bigger task pays only the delta *)
  let c3 = E.Incremental.add inc ~id:2 [ ("mul", 8) ] in
  check Alcotest.int "delta mul" (320 + 64) c3;
  check Alcotest.int "total" (2 * 320 + 32 + 3 * 64)
    (E.Incremental.total_area inc);
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "allocation"
    [ ("add", 1); ("mul", 2) ]
    (E.Incremental.allocation inc);
  (* removing the big task shrinks the allocation *)
  E.Incremental.remove inc ~id:2;
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "allocation shrinks"
    [ ("add", 1); ("mul", 1) ]
    (E.Incremental.allocation inc);
  check (Alcotest.list Alcotest.int) "resident" [ 0; 1 ]
    (E.Incremental.resident inc)

let test_incremental_query_no_commit () =
  let inc = E.Incremental.create () in
  ignore (E.Incremental.add inc ~id:0 [ ("add", 4) ]);
  let q = E.Incremental.incremental_cost inc [ ("add", 4) ] in
  check Alcotest.int "query" E.default_task_overhead q;
  check Alcotest.bool "not committed" false (E.Incremental.mem inc ~id:5);
  (* query twice gives same answer (no state change) *)
  check Alcotest.int "stable" q
    (E.Incremental.incremental_cost inc [ ("add", 4) ])

let test_incremental_errors () =
  let inc = E.Incremental.create () in
  ignore (E.Incremental.add inc ~id:0 []);
  (try
     ignore (E.Incremental.add inc ~id:0 []);
     fail "duplicate id"
   with Invalid_argument _ -> ());
  try
    E.Incremental.remove inc ~id:9;
    fail "unknown id"
  with Invalid_argument _ -> ()

let prop_incremental_never_exceeds_standalone =
  QCheck.Test.make ~name:"incremental cost <= standalone cost" ~count:200
    QCheck.(
      small_list
        (pair (oneofl [ "add"; "mul"; "div"; "xor"; "lt" ]) (int_range 0 12)))
    (fun mixes ->
      let inc = E.Incremental.create () in
      let ok = ref true in
      List.iteri
        (fun i mix ->
          let standalone = E.standalone_area mix in
          let incr_cost = E.Incremental.add inc ~id:i mix in
          if incr_cost > standalone then ok := false)
        (List.map (fun m -> [ m ]) mixes);
      !ok)

(* ------------------------------------------------------------------ *)
(* Fsmd                                                                *)
(* ------------------------------------------------------------------ *)

let gcd_fsmd () =
  (* gcd(a,b) by repeated subtraction *)
  F.make ~name:"gcd" ~start:"test"
    [
      {
        F.sname = "test";
        actions = [];
        trans =
          [
            { F.guard = Some (F.Bin (C.Eq, F.Reg "b", F.Const 0)); target = "done" };
            {
              F.guard = Some (F.Bin (C.Lt, F.Reg "a", F.Reg "b"));
              target = "swap";
            };
            { F.guard = None; target = "sub" };
          ];
      };
      {
        F.sname = "swap";
        actions = [ F.Set ("a", F.Reg "b"); F.Set ("b", F.Reg "a") ];
        trans = [ { F.guard = None; target = "test" } ];
      };
      {
        F.sname = "sub";
        actions = [ F.Set ("a", F.Bin (C.Sub, F.Reg "a", F.Reg "b")) ];
        trans = [ { F.guard = None; target = "test" } ];
      };
      { F.sname = "done"; actions = []; trans = [] };
    ]

let test_fsmd_gcd () =
  let m = gcd_fsmd () in
  let r = F.run ~regs:[ ("a", 54); ("b", 24) ] m in
  check Alcotest.int "gcd" 6 (List.assoc "a" r.F.final_regs);
  check Alcotest.string "halt state" "done" r.F.halted_in;
  check Alcotest.bool "took cycles" true (r.F.cycles > 5)

let test_fsmd_parallel_actions () =
  (* swap must be simultaneous: RHS reads pre-cycle values *)
  let m =
    F.make ~name:"swap" ~start:"s"
      [
        {
          F.sname = "s";
          actions = [ F.Set ("x", F.Reg "y"); F.Set ("y", F.Reg "x") ];
          trans = [];
        };
      ]
  in
  let r = F.run ~regs:[ ("x", 1); ("y", 2) ] m in
  check Alcotest.int "x" 2 (List.assoc "x" r.F.final_regs);
  check Alcotest.int "y" 1 (List.assoc "y" r.F.final_regs)

let test_fsmd_io () =
  let outs = ref [] in
  let env =
    {
      F.null_env with
      F.input = (fun p -> if p = "sensor" then 9 else 0);
      output = (fun p v -> outs := (p, v) :: !outs);
    }
  in
  let m =
    F.make ~name:"io" ~start:"s"
      [
        {
          F.sname = "s";
          actions =
            [
              F.Set ("x", F.Inp "sensor");
              F.AOut ("led", F.Const 1);
            ];
          trans = [ { F.guard = None; target = "t" } ];
        };
        {
          F.sname = "t";
          actions = [ F.AOut ("dbg", F.Bin (C.Mul, F.Reg "x", F.Const 2)) ];
          trans = [];
        };
      ]
  in
  ignore (F.run ~env m);
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "outputs" [ ("led", 1); ("dbg", 18) ]
    (List.rev !outs)

let test_fsmd_channels () =
  let sent = ref [] in
  let supply = ref [ 3; 4 ] in
  let env =
    {
      F.null_env with
      F.recv =
        (fun _ ->
          match !supply with
          | x :: rest ->
              supply := rest;
              x
          | [] -> fail "recv underflow");
      send = (fun ch v -> sent := (ch, v) :: !sent);
    }
  in
  let m =
    F.make ~name:"ch" ~start:"r1"
      [
        {
          F.sname = "r1";
          actions = [ F.ARecv ("a", "in") ];
          trans = [ { F.guard = None; target = "r2" } ];
        };
        {
          F.sname = "r2";
          actions = [ F.ARecv ("b", "in") ];
          trans = [ { F.guard = None; target = "s" } ];
        };
        {
          F.sname = "s";
          actions = [ F.ASend ("out", F.Bin (C.Add, F.Reg "a", F.Reg "b")) ];
          trans = [];
        };
      ]
  in
  let r = F.run ~env m in
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "sent" [ ("out", 7) ] !sent;
  check Alcotest.int "3 cycles" 3 r.F.cycles

let test_fsmd_validation () =
  (try
     ignore
       (F.make ~start:"a"
          [ { F.sname = "a"; actions = []; trans = [] };
            { F.sname = "a"; actions = []; trans = [] } ]);
     fail "dup states"
   with Invalid_argument _ -> ());
  (try
     ignore
       (F.make ~start:"a"
          [
            {
              F.sname = "a";
              actions = [];
              trans = [ { F.guard = None; target = "zzz" } ];
            };
          ]);
     fail "bad target"
   with Invalid_argument _ -> ());
  try
    ignore (F.make ~start:"nope" [ { F.sname = "a"; actions = []; trans = [] } ]);
    fail "bad start"
  with Invalid_argument _ -> ()

let test_fsmd_max_cycles () =
  let m =
    F.make ~name:"spin" ~start:"s"
      [
        {
          F.sname = "s";
          actions = [];
          trans = [ { F.guard = None; target = "s" } ];
        };
      ]
  in
  try
    ignore (F.run ~max_cycles:100 m);
    fail "expected max_cycles trap"
  with Invalid_argument _ -> ()

let test_fsmd_area_and_mix () =
  let m = gcd_fsmd () in
  check Alcotest.bool "area positive" true (F.area m > 0);
  check (Alcotest.list Alcotest.string) "registers" [ "a"; "b" ]
    (F.registers m);
  let mix = F.op_mix m in
  check Alcotest.bool "has sub" true (List.mem_assoc "sub" mix);
  check Alcotest.bool "has eq" true (List.mem_assoc "eq" mix)

let test_hdl_out_fsmd () =
  let s = Hdl_out.fsmd (gcd_fsmd ()) in
  check Alcotest.bool "has module" true (String.sub s 0 10 = "module gcd")

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "codesign_rtl"
    [
      ( "netlist",
        [
          Alcotest.test_case "build" `Quick test_netlist_build;
          Alcotest.test_case "validation" `Quick test_netlist_validation;
          Alcotest.test_case "full adder truth table" `Quick
            test_full_adder_truth_table;
          Alcotest.test_case "decoder" `Quick test_decoder;
          Alcotest.test_case "decoder errors" `Quick test_decoder_errors;
          Alcotest.test_case "dff counter" `Quick test_dff_counter;
          Alcotest.test_case "comb cycle rejected" `Quick
            test_comb_cycle_rejected;
          Alcotest.test_case "run vectors" `Quick test_run_vectors;
          Alcotest.test_case "run vectors resets state" `Quick
            test_run_vectors_resets_state;
          Alcotest.test_case "unknown signal names reported" `Quick
            test_unknown_signal_names;
          Alcotest.test_case "hdl out" `Quick test_hdl_out_netlist;
        ] );
      ( "estimate",
        [
          Alcotest.test_case "fu need" `Quick test_fu_need;
          Alcotest.test_case "standalone area" `Quick test_standalone_area;
          Alcotest.test_case "incremental sharing" `Quick
            test_incremental_sharing;
          Alcotest.test_case "query without commit" `Quick
            test_incremental_query_no_commit;
          Alcotest.test_case "errors" `Quick test_incremental_errors;
          QCheck_alcotest.to_alcotest
            prop_incremental_never_exceeds_standalone;
        ] );
      ( "fsmd",
        [
          Alcotest.test_case "gcd" `Quick test_fsmd_gcd;
          Alcotest.test_case "parallel actions" `Quick
            test_fsmd_parallel_actions;
          Alcotest.test_case "io" `Quick test_fsmd_io;
          Alcotest.test_case "channels" `Quick test_fsmd_channels;
          Alcotest.test_case "validation" `Quick test_fsmd_validation;
          Alcotest.test_case "max cycles" `Quick test_fsmd_max_cycles;
          Alcotest.test_case "area and mix" `Quick test_fsmd_area_and_mix;
          Alcotest.test_case "hdl out" `Quick test_hdl_out_fsmd;
        ] );
    ]
