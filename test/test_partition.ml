(* Tests for the conservative partitioned kernel: keyed arrival lanes,
   latency-channel semantics, the zero-lookahead guard, hand-built and
   generated partitioned networks vs the serial reference. *)

open Codesign_sim
module K = Kernel
module Ch = Channel
module P = Partition
module Pdes = Codesign_par.Pdes
module B = Codesign_ir.Behavior
module Pn = Codesign_ir.Process_network
module Rng = Codesign_ir.Rng
module Apps = Codesign_workloads.Apps
module Cosim = Codesign.Cosim
module Gen = Codesign_fuzz.Gen

let check = Alcotest.check
let fail = Alcotest.fail

let contains ~needle hay =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let expect_invalid ~needle f =
  match f () with
  | _ -> fail "expected Invalid_argument"
  | exception Invalid_argument msg ->
      if not (contains ~needle msg) then
        fail (Printf.sprintf "message %S does not mention %S" msg needle)

(* ------------------------------------------------------------------ *)
(* Keyed arrival lanes                                                 *)
(* ------------------------------------------------------------------ *)

let test_keyed_order () =
  (* keyed events at a timestamp fire before ordinary events, ordered by
     (lane, sequence); ordinary events keep their push order *)
  let k = K.create () in
  let log = ref [] in
  let ev tag () = log := tag :: !log in
  let lane0 = K.alloc_lane k in
  let lane1 = K.alloc_lane k in
  K.at k ~time:10 (ev "ord0");
  K.at_keyed k ~time:10 ~key:lane1 ~seq:0 (ev "l1s0");
  K.at_keyed k ~time:10 ~key:lane0 ~seq:1 (ev "l0s1");
  K.at_keyed k ~time:10 ~key:lane0 ~seq:0 (ev "l0s0");
  K.at k ~time:10 (ev "ord1");
  ignore (K.run k);
  check
    (Alcotest.list Alcotest.string)
    "keyed lanes fire first, in (lane, seq) order"
    [ "l0s0"; "l0s1"; "l1s0"; "ord0"; "ord1" ]
    (List.rev !log)

(* ------------------------------------------------------------------ *)
(* Latency channels and the messages/blocked_sends split               *)
(* ------------------------------------------------------------------ *)

let test_latency_channel () =
  (* latency channel = delay line: sends never block, each value lands
     [latency] ticks after its send, in send order *)
  let k = K.create () in
  let c = Ch.create ~latency:3 ~name:"lat" k () in
  let arrivals = ref [] in
  K.spawn k ~name:"prod" (fun () ->
      Ch.send c 1;
      Ch.send c 2;
      K.wait 5;
      Ch.send c 3);
  K.spawn k ~name:"cons" (fun () ->
      for _ = 1 to 3 do
        let v = Ch.recv c in
        arrivals := (K.now k, v) :: !arrivals
      done);
  ignore (K.run k);
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "arrival times = send time + latency, send order preserved"
    [ (3, 1); (3, 2); (8, 3) ]
    (List.rev !arrivals);
  let s = Ch.stats c in
  check Alcotest.int "sends" 3 s.Ch.sends;
  check Alcotest.int "messages" 3 s.Ch.messages;
  check Alcotest.int "no blocked sends on a latency channel" 0
    s.Ch.blocked_sends

let test_stats_split () =
  (* rendezvous back-pressure lands in blocked_sends, not messages *)
  let k = K.create () in
  let c = Ch.create ~name:"rdv" k () in
  K.spawn k ~name:"prod" (fun () ->
      Ch.send c 10;
      Ch.send c 11);
  K.spawn k ~name:"cons" (fun () ->
      K.wait 5;
      ignore (Ch.recv c);
      ignore (Ch.recv c));
  ignore (K.run k);
  let s = Ch.stats c in
  check Alcotest.int "sends" 2 s.Ch.sends;
  check Alcotest.int "messages (delivered)" 2 s.Ch.messages;
  (* first send stalls (no receiver yet); the handoff resumes the
     sender, whose second send then finds the receiver already waiting *)
  check Alcotest.int "blocked_sends (rendezvous stalls)" 1 s.Ch.blocked_sends;
  check Alcotest.int "recv_blocks" 1 s.Ch.recv_blocks

(* ------------------------------------------------------------------ *)
(* Zero-lookahead guard                                                *)
(* ------------------------------------------------------------------ *)

let test_zero_lookahead_guard () =
  let k = K.create () in
  let c : int Ch.t = Ch.create ~name:"loopy" k () in
  expect_invalid ~needle:"loopy" (fun () -> Ch.set_route c (fun _ _ -> ()));
  let s = Signal.create ~name:"wirez" k 0 in
  expect_invalid ~needle:"wirez" (fun () -> Signal.set_route s (fun _ _ -> ()));
  (* the partition layer names the channel and calls out self-loops *)
  let plan = P.create ~partitions:2 in
  let c0 : int Ch.t = Ch.create ~name:"xchan" (P.kernel plan 0) () in
  expect_invalid ~needle:"xchan" (fun () ->
      P.route_channel plan ~src:0 ~dst:1 c0);
  let c1 : int Ch.t = Ch.create ~name:"selfy" (P.kernel plan 0) () in
  expect_invalid ~needle:"self-loop" (fun () ->
      P.route_channel plan ~src:0 ~dst:0 c1);
  (* and run_network surfaces the same guard for latency-0 cut channels *)
  let net =
    Pn.make ~name:"tiny"
      [
        (Apps.producer ~chan:"c0" ~count:4 (), Pn.Hw);
        (Apps.consumer ~chan:"c0" ~count:4 ~port:1 (), Pn.Hw);
      ]
      [ { Pn.cname = "c0"; src = "producer"; dst = "consumer"; depth = 2;
          latency = 0 } ]
  in
  expect_invalid ~needle:"c0" (fun () ->
      Cosim.run_network ~partition:[ ("consumer", 1) ] net)

let test_pn_latency_validation () =
  expect_invalid ~needle:"latency" (fun () ->
      Pn.make ~name:"bad"
        [
          (Apps.producer ~chan:"c0" ~count:1 (), Pn.Hw);
          (Apps.consumer ~chan:"c0" ~count:1 ~port:1 (), Pn.Hw);
        ]
        [ { Pn.cname = "c0"; src = "producer"; dst = "consumer"; depth = 1;
            latency = -1 } ])

(* ------------------------------------------------------------------ *)
(* Hand-built two-partition network vs the single-wheel reference      *)
(* ------------------------------------------------------------------ *)

(* One producer streaming over a latency-2 channel and a latency-3
   status signal to a consumer partition that also hosts a VCD recorder.
   The exact same construction runs on one wheel, on a 2-partition plan
   driven serially, and on a 2-partition plan driven by domains; the
   received (time, value) log, the VCD dump and the merged kernel stats
   must match byte for byte. *)

let spawn_hand_procs ~kp ~kc c s log =
  K.spawn kp ~name:"prod" (fun () ->
      for i = 0 to 7 do
        Ch.send c (i * i);
        Signal.write s i;
        K.wait 3
      done);
  K.spawn kc ~name:"cons" (fun () ->
      for _ = 0 to 7 do
        let v = Ch.recv c in
        log := (K.now kc, v) :: !log
      done)

let run_hand_serial () =
  let k = K.create () in
  let c = Ch.create ~latency:2 ~name:"x" k () in
  let s = Signal.create ~latency:3 ~name:"st" k 0 in
  let vcd = Vcd.create k in
  Vcd.watch vcd ~width:16 s;
  let log = ref [] in
  spawn_hand_procs ~kp:k ~kc:k c s log;
  let stats = K.run k in
  (List.rev !log, Vcd.dump vcd, stats)

let run_hand_partitioned drive =
  let plan = P.create ~partitions:2 in
  let kp = P.kernel plan 0 and kc = P.kernel plan 1 in
  let c = Ch.create ~latency:2 ~name:"x" kc () in
  let s = Signal.create ~latency:3 ~name:"st" kc 0 in
  let vcd = Vcd.create kc in
  Vcd.watch vcd ~width:16 s;
  P.route_channel plan ~src:0 ~dst:1 c;
  P.route_signal plan ~src:0 ~dst:1 s;
  let log = ref [] in
  spawn_hand_procs ~kp ~kc c s log;
  let stats = drive plan in
  (List.rev !log, Vcd.dump vcd, stats)

let test_hand_network () =
  let log0, vcd0, st0 = run_hand_serial () in
  check (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "serial reference log"
    [ (2, 0); (5, 1); (8, 4); (11, 9); (14, 16); (17, 25); (20, 36);
      (23, 49) ]
    log0;
  List.iter
    (fun (tag, drive) ->
      let log, vcd, st = run_hand_partitioned drive in
      check (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
        (tag ^ ": received log") log0 log;
      check Alcotest.string (tag ^ ": vcd dump") vcd0 vcd;
      check Alcotest.bool (tag ^ ": merged stats") true (st = st0))
    [
      ("run_serial", fun plan -> P.run_serial plan);
      ("pdes", fun plan -> Pdes.run plan);
    ]

(* ------------------------------------------------------------------ *)
(* Whole-network byte-identity: mesh, echo, fuzzed feed-forward nets   *)
(* ------------------------------------------------------------------ *)

let check_same_result tag (a : Cosim.network_result)
    (b : Cosim.network_result) =
  check Alcotest.int (tag ^ ": end_time") a.Cosim.end_time b.Cosim.end_time;
  check Alcotest.int (tag ^ ": events") a.Cosim.net_events b.Cosim.net_events;
  check Alcotest.int (tag ^ ": activations") a.Cosim.net_activations
    b.Cosim.net_activations;
  check Alcotest.bool (tag ^ ": full result (ports, results, stats)") true
    (a = b)

let test_mesh_partition_maps () =
  let stages = 3 and lanes = 4 in
  let net = Apps.mesh ~stages ~lanes ~count:10 ~work:4 () in
  let serial = Cosim.run_network net in
  let scatter =
    (* an arbitrary non-lane-aligned map: every channel still has
       latency >= 1, so any cut is legal *)
    List.mapi
      (fun i (p, _) -> (p.B.name, [| 0; 2; 1; 1; 0; 2 |].(i mod 6)))
      net.Pn.procs
  in
  List.iter
    (fun (tag, map) ->
      check_same_result tag serial (Cosim.run_network ~partition:map net))
    [
      ("mesh p=2", Apps.mesh_partition ~stages ~lanes ~partitions:2 ());
      ("mesh p=4", Apps.mesh_partition ~stages ~lanes ~partitions:4 ());
      ("mesh scatter", scatter);
    ]

let test_echo_partitioned () =
  let run ~partitions =
    Cosim.run_echo_assignment
      ~levels:(Cosim.pure Cosim.Message)
      ~partitions ~link_latency:4 ()
  in
  let serial = run ~partitions:1 in
  check Alcotest.bool "echo p=2 ≡ serial" true (run ~partitions:2 = serial);
  check Alcotest.bool "echo p=3 ≡ serial" true (run ~partitions:3 = serial);
  expect_invalid ~needle:"lookahead" (fun () ->
      Cosim.run_echo_assignment
        ~levels:(Cosim.pure Cosim.Message)
        ~partitions:2 ~link_latency:0 ())

let test_net_spec_sweep () =
  for seed = 1 to 10 do
    let net = Gen.net_spec (Rng.create (1000 + seed)) in
    let serial = Cosim.run_network net in
    let names = List.map (fun (p, _) -> p.B.name) net.Pn.procs in
    let rng = Rng.create seed in
    let random_map = List.map (fun n -> (n, Rng.int rng 3)) names in
    List.iter
      (fun (tag, map) ->
        check_same_result
          (Printf.sprintf "net_spec seed %d %s" seed tag)
          serial
          (Cosim.run_network ~partition:map net))
      [
        ("p=2", List.mapi (fun i n -> (n, i mod 2)) names);
        ("p=4", List.mapi (fun i n -> (n, i mod 4)) names);
        ("random", random_map);
      ]
  done

let () =
  Alcotest.run "partition"
    [
      ( "lanes",
        [ Alcotest.test_case "keyed ordering" `Quick test_keyed_order ] );
      ( "channels",
        [
          Alcotest.test_case "latency semantics" `Quick test_latency_channel;
          Alcotest.test_case "stats split" `Quick test_stats_split;
        ] );
      ( "guards",
        [
          Alcotest.test_case "zero lookahead" `Quick test_zero_lookahead_guard;
          Alcotest.test_case "pn latency validation" `Quick
            test_pn_latency_validation;
        ] );
      ( "identity",
        [
          Alcotest.test_case "hand-built network" `Quick test_hand_network;
          Alcotest.test_case "mesh maps" `Quick test_mesh_partition_maps;
          Alcotest.test_case "echo" `Quick test_echo_partitioned;
          Alcotest.test_case "fuzzed feed-forward nets" `Quick
            test_net_spec_sweep;
        ] );
    ]
