(* The Fig. 3 transport layer and the mixed-level co-simulation grid.

   The load-bearing suite here is the golden table: the generic
   [Cosim.run_echo_assignment] pipeline replaced four dedicated
   per-level runners, and each pure assignment must reproduce the old
   runner's metrics *exactly* (the values below were captured from the
   pre-refactor implementation).  The mixed-assignment properties then
   pin what the grid claims: checksum constant everywhere, cost
   non-increasing when a component is raised along an axis where the
   abstraction only removes modelled activity. *)

module K = Codesign_sim.Kernel
module Ch = Codesign_sim.Channel
module M = Codesign_bus.Memory_map
module T = Codesign_bus.Transport
module Device = Codesign_bus.Device
module Pn = Codesign_ir.Process_network
module B = Codesign_ir.Behavior
open Codesign

let check = Alcotest.check
let fail = Alcotest.fail

(* ------------------------------------------------------------------ *)
(* golden pure-level metrics (captured pre-refactor)                   *)
(* ------------------------------------------------------------------ *)

(* (checksum, sim_cycles, events, activations, bus_ops) per level, for
   four parameter sets *)
let goldens =
  [
    ( "default", (16, 8, 200, 120),
      [
        (Cosim.Pin, (4554, 3550, 2713, 2713, 82));
        (Cosim.Transaction, (4554, 3478, 2222, 2222, 83));
        (Cosim.Driver, (4554, 3544, 2176, 2176, 32));
        (Cosim.Message, (4554, 3472, 421, 421, 0));
      ] );
    ( "quick", (8, 4, 200, 120),
      [
        (Cosim.Pin, (366, 1734, 1369, 1369, 98));
        (Cosim.Transaction, (366, 1726, 798, 798, 107));
        (Cosim.Driver, (366, 1728, 722, 722, 16));
        (Cosim.Message, (366, 1808, 149, 149, 0));
      ] );
    ( "full", (32, 12, 200, 120),
      [
        (Cosim.Pin, (46232, 9582, 7065, 7065, 146));
        (Cosim.Transaction, (46232, 9446, 6190, 6190, 147));
        (Cosim.Driver, (46232, 9576, 6112, 6112, 64));
        (Cosim.Message, (46232, 7976, 1070, 1070, 0));
      ] );
    ( "alt", (5, 3, 90, 170),
      [
        (Cosim.Pin, (124, 924, 747, 747, 56));
        (Cosim.Transaction, (124, 908, 418, 418, 60));
        (Cosim.Driver, (124, 904, 375, 375, 10));
        (Cosim.Message, (124, 1012, 77, 77, 0));
      ] );
  ]

let metrics_tuple (m : Cosim.metrics) =
  (m.Cosim.checksum, m.Cosim.sim_cycles, m.Cosim.events,
   m.Cosim.activations, m.Cosim.bus_ops)

let quint = Alcotest.(pair int (pair int (pair int (pair int int))))
let nest (a, b, c, d, e) = (a, (b, (c, (d, e))))

let test_pure_levels_reproduce_goldens () =
  List.iter
    (fun (tag, (items, work, src_period, sink_period), rows) ->
      List.iter
        (fun (level, expect) ->
          let m =
            Cosim.run_echo_assignment ~levels:(Cosim.pure level) ~items
              ~work ~src_period ~sink_period ()
          in
          check Alcotest.bool
            (tag ^ " " ^ Cosim.level_name level ^ " completed")
            true
            (m.Cosim.outcome = Cosim.Completed);
          check quint
            (tag ^ " " ^ Cosim.level_name level ^ " metrics")
            (nest expect)
            (nest (metrics_tuple m)))
        rows)
    goldens

let test_run_echo_system_is_pure_assignment () =
  List.iter
    (fun level ->
      let direct = Cosim.run_echo_system ~level ~items:8 ~work:4 () in
      let via =
        Cosim.run_echo_assignment ~levels:(Cosim.pure level) ~items:8
          ~work:4 ()
      in
      check Alcotest.bool
        (Cosim.level_name level ^ " identical via either entry point")
        true (direct = via);
      check Alcotest.bool
        (Cosim.level_name level ^ " assignment recorded")
        true
        (direct.Cosim.assignment = Cosim.pure level
        && Cosim.is_pure direct.Cosim.assignment))
    Cosim.all_levels

(* ------------------------------------------------------------------ *)
(* mixed-assignment properties                                         *)
(* ------------------------------------------------------------------ *)

let bump = function
  | Cosim.Pin -> Cosim.Transaction
  | Cosim.Transaction -> Cosim.Driver
  | Cosim.Driver -> Cosim.Message
  | Cosim.Message -> Cosim.Message

(* Deterministic sample of the grid x parameter space.  The axes along
   which raising a component must not cost more: src (always), cpu
   (always), sink while it stays on a bus rung — the sink's step onto
   Message swaps a passive device for an active endpoint process and is
   allowed its bounded scheduling cost (checked separately below). *)
let test_mixed_assignments_hold_invariants () =
  let rng = Random.State.make [| 0x3117 |] in
  let levels = [| Cosim.Pin; Cosim.Transaction; Cosim.Driver;
                  Cosim.Message |] in
  for _trial = 1 to 20 do
    let items = 2 + Random.State.int rng 23 in
    let work = 1 + Random.State.int rng 12 in
    let src_period = 80 + Random.State.int rng 321 in
    let sink_period = 40 + Random.State.int rng 161 in
    let run levels =
      Cosim.run_echo_assignment ~levels ~items ~work ~src_period
        ~sink_period ()
    in
    let pick () = levels.(Random.State.int rng 4) in
    let a = { Cosim.src = pick (); cpu = pick (); sink = pick () } in
    let pin = run (Cosim.pure Cosim.Pin) in
    let m = run a in
    let where =
      Printf.sprintf "%s (items=%d work=%d sp=%d kp=%d)"
        (Cosim.assignment_name a) items work src_period sink_period
    in
    check Alcotest.bool (where ^ " completed") true
      (m.Cosim.outcome = Cosim.Completed);
    check Alcotest.int (where ^ " checksum = pure pin")
      pin.Cosim.checksum m.Cosim.checksum;
    check Alcotest.bool (where ^ " bus_ops iff a bus-ish interface") true
      ((m.Cosim.bus_ops = 0)
      = (a.Cosim.src = Cosim.Message && a.Cosim.sink = Cosim.Message));
    let raised =
      (if a.Cosim.src <> Cosim.Message then
         [ { a with Cosim.src = bump a.Cosim.src } ]
       else [])
      @ (if a.Cosim.cpu <> Cosim.Message then
           [ { a with Cosim.cpu = bump a.Cosim.cpu } ]
         else [])
      @
      match a.Cosim.sink with
      | Cosim.Pin | Cosim.Transaction ->
          [ { a with Cosim.sink = bump a.Cosim.sink } ]
      | _ -> []
    in
    List.iter
      (fun a' ->
        let m' = run a' in
        let step = where ^ " -> " ^ Cosim.assignment_name a' in
        check Alcotest.int (step ^ " checksum stable") m.Cosim.checksum
          m'.Cosim.checksum;
        check Alcotest.bool (step ^ " events non-increasing") true
          (m'.Cosim.events <= m.Cosim.events);
        check Alcotest.bool (step ^ " activations non-increasing") true
          (m'.Cosim.activations <= m.Cosim.activations))
      raised
  done

(* The one non-monotone edge: a Message-level sink adds its endpoint
   process's own scheduling, but no more than a few events per item. *)
let test_message_sink_overhead_is_bounded () =
  List.iter
    (fun (items, work) ->
      let run sink =
        Cosim.run_echo_assignment
          ~levels:{ Cosim.src = Cosim.Driver; cpu = Cosim.Driver; sink }
          ~items ~work ()
      in
      let drv = run Cosim.Driver and msg = run Cosim.Message in
      check Alcotest.int "checksum stable across the sink edge"
        drv.Cosim.checksum msg.Cosim.checksum;
      check Alcotest.bool "message sink costs at most ~4 events/item" true
        (msg.Cosim.events <= drv.Cosim.events + (4 * items) + 16))
    [ (8, 4); (16, 8); (32, 12) ]

let test_ladder_position_and_names () =
  check Alcotest.int "all-pin is position 0" 0
    (Cosim.ladder_position (Cosim.pure Cosim.Pin));
  check Alcotest.int "all-message is position 9" 9
    (Cosim.ladder_position (Cosim.pure Cosim.Message));
  let a = { Cosim.src = Cosim.Pin; cpu = Cosim.Transaction;
            sink = Cosim.Message } in
  check Alcotest.string "assignment name" "pin:tlm:message"
    (Cosim.assignment_name a);
  (match Cosim.parse_assignment "pin:tlm:message" with
  | Ok a' -> check Alcotest.bool "parse round-trips" true (a' = a)
  | Error e -> fail e);
  (match Cosim.parse_assignment "driver" with
  | Ok a' ->
      check Alcotest.bool "single level parses as pure" true
        (a' = Cosim.pure Cosim.Driver)
  | Error e -> fail e);
  (match Cosim.parse_assignment "pin:bogus:tlm" with
  | Ok _ -> fail "bogus level accepted"
  | Error _ -> ());
  match Cosim.parse_assignment "pin:tlm" with
  | Ok _ -> fail "two-component assignment accepted"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* transport backends                                                  *)
(* ------------------------------------------------------------------ *)

let test_levels_round_trip () =
  List.iter
    (fun l ->
      match T.level_of_string (T.short_name l) with
      | Ok l' -> check Alcotest.bool (T.short_name l ^ " round-trips")
                   true (l = l')
      | Error e -> fail e)
    T.all_levels;
  check Alcotest.bool "ranks ascend the ladder" true
    (List.sort compare (List.map T.rank T.all_levels) = [ 0; 1; 2; 3 ]);
  match T.level_of_string "sysc" with
  | Ok _ -> fail "unknown level accepted"
  | Error _ -> ()

let test_driver_transport_charges_call_cost () =
  let k = K.create () in
  let map = M.create [ M.ram ~name:"ram" ~base:0 ~size:8 ] in
  let tr = T.driver ~call_cost:6 map in
  check Alcotest.bool "driver level" true (tr.T.level = T.Driver);
  K.spawn ~name:"master" k (fun () ->
      let t0 = K.now k in
      tr.T.write 3 99;
      check Alcotest.int "write costs the call" 6 (K.now k - t0);
      let v = tr.T.read 3 in
      check Alcotest.int "round-trips the datum" 99 v;
      check Alcotest.int "read costs the call too" 12 (K.now k - t0));
  ignore (K.run k);
  let s = tr.T.stats () in
  check Alcotest.int "one read one write" 2 s.T.ops;
  check Alcotest.int "reads counted" 1 s.T.reads;
  check Alcotest.int "writes counted" 1 s.T.writes

let test_tlm_transport_counts_and_times () =
  let k = K.create () in
  let map = M.create [ M.ram ~name:"ram" ~base:0 ~size:8 ] in
  let tr = T.tlm ~read_latency:2 ~write_latency:3 k map in
  K.spawn ~name:"master" k (fun () ->
      let t0 = K.now k in
      tr.T.write 1 7;
      check Alcotest.int "tlm write latency" 3 (K.now k - t0);
      check Alcotest.int "tlm read" 7 (tr.T.read 1));
  ignore (K.run k);
  check Alcotest.int "tlm ops counted" 2 (tr.T.stats ()).T.ops

let test_message_transport_binds_endpoints () =
  let k = K.create () in
  let c_in : int Ch.t = Ch.create ~depth:2 ~name:"in" k () in
  let c_out : int Ch.t = Ch.create ~depth:2 ~name:"out" k () in
  let base_in = 0x10 and base_out = 0x20 in
  let tr =
    T.message ~recv:[ (base_in, c_in) ] ~send:[ (base_out, c_out) ] ()
  in
  check Alcotest.int "empty recv endpoint not ready" 0 (tr.T.read base_in);
  check Alcotest.int "send endpoint with space ready" 1 (tr.T.read base_out);
  let got = ref [] in
  K.spawn ~name:"producer" k (fun () ->
      Ch.send c_in 11;
      Ch.send c_in 22);
  K.spawn ~name:"master" k (fun () ->
      let a = tr.T.read (base_in + 1) in
      let b = tr.T.read (base_in + 1) in
      got := [ a; b ];
      tr.T.write (base_out + 1) 33);
  K.spawn ~name:"consumer" k (fun () ->
      check Alcotest.int "forwarded over the send endpoint" 33
        (Ch.recv c_out));
  ignore (K.run k);
  check Alcotest.(list int) "data reads are channel receives" [ 11; 22 ]
    !got;
  check Alcotest.int "message traffic is not bus traffic" 0
    (tr.T.stats ()).T.ops;
  (match tr.T.read (base_out + 1) with
  | _ -> fail "read from a send endpoint accepted"
  | exception Invalid_argument _ -> ());
  match tr.T.write 0x999 0 with
  | () -> fail "unbound address accepted"
  | exception Invalid_argument _ -> ()

let test_view_relabels_upward_only () =
  let k = K.create () in
  let map = M.create [ M.ram ~name:"ram" ~base:0 ~size:4 ] in
  let tr = T.tlm k map in
  let v = T.view tr ~as_:T.Message in
  check Alcotest.bool "relabelled" true (v.T.level = T.Message);
  K.spawn ~name:"master" k (fun () -> v.T.write 0 5);
  ignore (K.run k);
  check Alcotest.int "medium and stats are the wrapped backend's" 1
    (tr.T.stats ()).T.ops;
  match T.view tr ~as_:T.Pin with
  | _ -> fail "view invented detail"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* transactors                                                         *)
(* ------------------------------------------------------------------ *)

let test_mailbox_bridges_channel_to_bus () =
  let k = K.create () in
  let chan : int Ch.t = Ch.create ~depth:2 ~name:"stream" k () in
  let mb = T.Mailbox.create ~depth:2 k chan in
  let map = M.create [ T.Mailbox.region ~name:"mb" ~base:0x40 mb ] in
  let tr = T.tlm k map in
  K.spawn ~name:"producer" k (fun () ->
      for i = 1 to 5 do
        K.wait 20;
        Ch.send chan (i * 3)
      done);
  let got = ref [] in
  K.spawn ~name:"master" k (fun () ->
      for _ = 1 to 5 do
        tr.T.wait_ready 0x40;
        got := tr.T.read 0x41 :: !got
      done);
  ignore (K.run k);
  check Alcotest.(list int) "a bus master consumed the message stream"
    [ 3; 6; 9; 12; 15 ] (List.rev !got);
  check Alcotest.int "pump accounted every word" 5 (T.Mailbox.delivered mb)

let test_stream_to_channel_bridges_bus_to_channel () =
  let k = K.create () in
  let src =
    Device.Stream_src.create ~depth:4 ~period:30 ~count:6
      ~gen:(fun i -> 100 + i)
      k ()
  in
  let map =
    M.create [ Device.Stream_src.region ~name:"src" ~base:0x10 src ]
  in
  let tr = T.tlm k map in
  let chan : int Ch.t = Ch.create ~depth:2 ~name:"words" k () in
  T.stream_to_channel k tr ~base:0x10 ~count:6 chan;
  let got = ref [] in
  K.spawn ~name:"consumer" k (fun () ->
      for _ = 1 to 6 do
        got := Ch.recv chan :: !got
      done);
  ignore (K.run k);
  check Alcotest.(list int) "message software consumed the bus stream"
    [ 100; 101; 102; 103; 104; 105 ]
    (List.rev !got);
  check Alcotest.bool "the pump's polls and reads were bus traffic" true
    ((tr.T.stats ()).T.ops >= 6)

(* ------------------------------------------------------------------ *)
(* lookup-error satellites                                             *)
(* ------------------------------------------------------------------ *)

let contains msg needle =
  let n = String.length needle and m = String.length msg in
  let rec at i = i + n <= m && (String.sub msg i n = needle || at (i + 1)) in
  n = 0 || at 0

let expect_invalid_arg name needles f =
  match f () with
  | _ -> fail (name ^ ": no exception")
  | exception Invalid_argument msg ->
      List.iter
        (fun needle ->
          check Alcotest.bool
            (Printf.sprintf "%s mentions %S in %S" name needle msg)
            true (contains msg needle))
        needles

let test_memory_map_errors_name_the_windows () =
  let map =
    M.create
      [
        M.ram ~name:"scratch" ~base:0x100 ~size:16;
        M.rom ~name:"boot" ~base:0x400 [| 1; 2; 3 |];
      ]
  in
  expect_invalid_arg "read" [ "scratch"; "boot"; "0x100"; "0x10f"; "0x402" ]
    (fun () -> M.read map 0x99);
  expect_invalid_arg "write" [ "scratch"; "boot"; "unmapped address 9" ]
    (fun () -> M.write map 9 0)

let proc name sends recvs =
  {
    B.name;
    params = [];
    arrays = [];
    results = [];
    body =
      List.map (fun c -> B.Send (c, B.Int 0)) sends
      @ List.map (fun c -> B.Recv ("x", c)) recvs;
  }

let test_process_network_lookup_errors () =
  let net =
    Pn.make ~name:"pair"
      [ (proc "writer" [ "c" ] [], Pn.Sw); (proc "reader" [] [ "c" ], Pn.Hw) ]
      [ { Pn.cname = "c"; src = "writer"; dst = "reader"; depth = 1; latency = 0 } ]
  in
  check Alcotest.bool "find_proc finds" true
    (snd (Pn.find_proc net "reader") = Pn.Hw);
  check Alcotest.int "find_channel finds" 1
    (Pn.find_channel net "c").Pn.depth;
  expect_invalid_arg "find_proc" [ "ghost"; "writer"; "reader" ] (fun () ->
      Pn.find_proc net "ghost");
  expect_invalid_arg "find_channel" [ "nope"; "c" ] (fun () ->
      Pn.find_channel net "nope")

let () =
  Alcotest.run "codesign_transport"
    [
      ( "pure-level identity",
        [
          Alcotest.test_case "pure assignments reproduce golden metrics"
            `Quick test_pure_levels_reproduce_goldens;
          Alcotest.test_case "run_echo_system = pure run_echo_assignment"
            `Quick test_run_echo_system_is_pure_assignment;
        ] );
      ( "mixed grid",
        [
          Alcotest.test_case "sampled assignments hold the grid invariants"
            `Quick test_mixed_assignments_hold_invariants;
          Alcotest.test_case "message-sink overhead is bounded" `Quick
            test_message_sink_overhead_is_bounded;
          Alcotest.test_case "positions, names, parsing" `Quick
            test_ladder_position_and_names;
        ] );
      ( "backends",
        [
          Alcotest.test_case "level spellings round-trip" `Quick
            test_levels_round_trip;
          Alcotest.test_case "driver charges the lumped call" `Quick
            test_driver_transport_charges_call_cost;
          Alcotest.test_case "tlm counts and times transfers" `Quick
            test_tlm_transport_counts_and_times;
          Alcotest.test_case "message binds channel endpoints" `Quick
            test_message_transport_binds_endpoints;
          Alcotest.test_case "view relabels upward only" `Quick
            test_view_relabels_upward_only;
        ] );
      ( "transactors",
        [
          Alcotest.test_case "mailbox: channel -> bus" `Quick
            test_mailbox_bridges_channel_to_bus;
          Alcotest.test_case "stream pump: bus -> channel" `Quick
            test_stream_to_channel_bridges_bus_to_channel;
        ] );
      ( "lookup errors",
        [
          Alcotest.test_case "memory map names its windows" `Quick
            test_memory_map_errors_name_the_windows;
          Alcotest.test_case "process network names its members" `Quick
            test_process_network_lookup_errors;
        ] );
    ]
