(* Tests for the codesign_bus library: memory map, TLM and pin-level bus
   models, interrupt controller, devices, DMA, and Chinook-style
   interface synthesis (drivers verified end-to-end on the ISS). *)

open Codesign_bus
module K = Codesign_sim.Kernel
module M = Memory_map
module Cpu = Codesign_isa.Cpu
module Asm = Codesign_isa.Asm
module I = Codesign_isa.Isa

let check = Alcotest.check
let fail = Alcotest.fail

(* ------------------------------------------------------------------ *)
(* Memory_map                                                          *)
(* ------------------------------------------------------------------ *)

let test_map_decode () =
  let m =
    M.create
      [
        M.ram ~name:"ram" ~base:0 ~size:100;
        M.rom ~name:"rom" ~base:200 [| 7; 8; 9 |];
      ]
  in
  (match M.decode m 50 with
  | Some (r, off) ->
      check Alcotest.string "ram" "ram" r.M.name;
      check Alcotest.int "off" 50 off
  | None -> fail "decode");
  check Alcotest.bool "unmapped" true (M.decode m 150 = None);
  M.write m 10 42;
  check Alcotest.int "ram rw" 42 (M.read m 10);
  check Alcotest.int "rom read" 8 (M.read m 201);
  (try
     M.write m 201 0;
     fail "rom write"
   with Invalid_argument _ -> ());
  try
    ignore (M.read m 1000);
    fail "unmapped read"
  with Invalid_argument _ -> ()

let test_map_overlap () =
  try
    ignore
      (M.create
         [ M.ram ~name:"a" ~base:0 ~size:10; M.ram ~name:"b" ~base:5 ~size:10 ]);
    fail "overlap"
  with Invalid_argument _ -> ()

let test_map_device () =
  let log = ref [] in
  let h =
    M.simple_handlers
      ~wait_states:(fun off -> off * 3)
      (fun off -> off + 100)
      (fun off v -> log := (off, v) :: !log)
  in
  let m = M.create [ M.device ~name:"d" ~base:64 ~size:4 h ] in
  check Alcotest.int "dev read" 102 (M.read m 66);
  M.write m 65 9;
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "dev write" [ (1, 9) ] !log;
  check Alcotest.int "wait states" 6 (M.wait_states m 66);
  check Alcotest.int "no ws for ram" 0 (M.wait_states m 9999)

(* ------------------------------------------------------------------ *)
(* Bus models                                                          *)
(* ------------------------------------------------------------------ *)

let test_tlm_read_write () =
  let k = K.create () in
  let m = M.create [ M.ram ~name:"ram" ~base:0 ~size:64 ] in
  let bus = Bus.Tlm.create ~read_latency:3 ~write_latency:2 k m in
  let got = ref (-1) in
  K.spawn k (fun () ->
      Bus.Tlm.write bus 5 77;
      got := Bus.Tlm.read bus 5);
  let st = K.run k in
  check Alcotest.int "value" 77 !got;
  check Alcotest.int "time = 2+3" 5 st.K.end_time;
  let s = Bus.Tlm.stats bus in
  check Alcotest.int "reads" 1 s.Bus.reads;
  check Alcotest.int "writes" 1 s.Bus.writes;
  check Alcotest.int "busy" 5 s.Bus.busy_cycles

let test_tlm_arbitration () =
  let k = K.create () in
  let m = M.create [ M.ram ~name:"ram" ~base:0 ~size:64 ] in
  let bus = Bus.Tlm.create ~read_latency:4 ~write_latency:4 k m in
  let done_times = ref [] in
  for i = 1 to 3 do
    K.spawn ~name:(Printf.sprintf "m%d" i) k (fun () ->
        ignore (Bus.Tlm.read bus 0);
        done_times := (i, K.now k) :: !done_times)
  done;
  ignore (K.run k);
  (* serialised fairly: 4, 8, 12 in spawn order *)
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "fifo arbitration"
    [ (1, 4); (2, 8); (3, 12) ]
    (List.rev !done_times);
  check Alcotest.int "stalls" 2 (Bus.Tlm.stats bus).Bus.stalls

let test_pin_matches_tlm_functionally () =
  let k = K.create () in
  let m = M.create [ M.ram ~name:"ram" ~base:0 ~size:64 ] in
  let pin = Bus.Pin.create k m in
  let got = ref (-1) in
  K.spawn k (fun () ->
      Bus.Pin.write pin 7 123;
      got := Bus.Pin.read pin 7);
  ignore (K.run ~expect_quiescent:true k);
  check Alcotest.int "value" 123 !got;
  let s = Bus.Pin.stats pin in
  check Alcotest.int "reads" 1 s.Bus.reads;
  check Alcotest.int "writes" 1 s.Bus.writes

let test_pin_sees_wait_states_tlm_does_not () =
  (* device with 10 wait states: pin-level accrues them, TLM does not *)
  let mk_map () =
    M.create
      [
        M.device ~name:"slow" ~base:0 ~size:2
          (M.simple_handlers ~wait_states:(fun _ -> 10) (fun _ -> 5)
             (fun _ _ -> ()));
      ]
  in
  let k1 = K.create () in
  let tlm = Bus.Tlm.create k1 (mk_map ()) in
  let t_tlm = ref 0 in
  K.spawn k1 (fun () ->
      ignore (Bus.Tlm.read tlm 0);
      t_tlm := K.now k1);
  ignore (K.run k1);
  let k2 = K.create () in
  let pin = Bus.Pin.create k2 (mk_map ()) in
  let t_pin = ref 0 in
  K.spawn k2 (fun () ->
      ignore (Bus.Pin.read pin 0);
      t_pin := K.now k2);
  ignore (K.run ~expect_quiescent:true k2);
  check Alcotest.bool "pin slower than tlm" true (!t_pin > !t_tlm);
  check Alcotest.bool "pin >= wait states" true (!t_pin >= 10)

let test_pin_generates_more_events () =
  let mk_map () = M.create [ M.ram ~name:"ram" ~base:0 ~size:64 ] in
  let run_with iface_of =
    let k = K.create () in
    let iface = iface_of k (mk_map ()) in
    K.spawn k (fun () ->
        for i = 0 to 9 do
          iface.Bus.bus_write i i;
          ignore (iface.Bus.bus_read i)
        done);
    let st = K.run ~expect_quiescent:true k in
    st.K.scheduled
  in
  let ev_tlm = run_with (fun k m -> Bus.tlm_iface (Bus.Tlm.create k m)) in
  let ev_pin = run_with (fun k m -> Bus.pin_iface (Bus.Pin.create k m)) in
  check Alcotest.bool "pin >> tlm events" true (ev_pin > 2 * ev_tlm)

let test_zero_iface () =
  let m = M.create [ M.ram ~name:"ram" ~base:0 ~size:8 ] in
  let z = Bus.zero_iface m in
  z.Bus.bus_write 3 9;
  check Alcotest.int "rw" 9 (z.Bus.bus_read 3);
  let s = z.Bus.bus_stats () in
  check Alcotest.int "reads" 1 s.Bus.reads;
  check Alcotest.int "no cycles" 0 s.Bus.busy_cycles

(* ------------------------------------------------------------------ *)
(* Interrupt controller                                                *)
(* ------------------------------------------------------------------ *)

let test_intc_basic () =
  let ic = Interrupt.create ~lines:4 () in
  check Alcotest.bool "idle" false (Interrupt.cpu_level ic);
  check Alcotest.int "current idle" (-1) (Interrupt.current ic);
  Interrupt.raise_line ic 2;
  Interrupt.raise_line ic 1;
  check Alcotest.bool "level" true (Interrupt.cpu_level ic);
  check Alcotest.int "priority" 1 (Interrupt.current ic);
  Interrupt.ack ic 1;
  check Alcotest.int "next" 2 (Interrupt.current ic);
  Interrupt.ack ic 2;
  check Alcotest.bool "clear" false (Interrupt.cpu_level ic)

let test_intc_mask () =
  let ic = Interrupt.create ~lines:4 () in
  Interrupt.set_mask ic 0b1100;
  Interrupt.raise_line ic 0;
  check Alcotest.bool "masked" false (Interrupt.cpu_level ic);
  check Alcotest.int "current masked" (-1) (Interrupt.current ic);
  Interrupt.raise_line ic 3;
  check Alcotest.int "current" 3 (Interrupt.current ic)

let test_intc_on_change () =
  let ic = Interrupt.create () in
  let events = ref [] in
  Interrupt.on_change ic (fun l -> events := l :: !events);
  Interrupt.raise_line ic 0;
  Interrupt.raise_line ic 1;
  (* no duplicate notification *)
  Interrupt.ack ic 0;
  Interrupt.ack ic 1;
  check (Alcotest.list Alcotest.bool) "edges" [ true; false ]
    (List.rev !events)

let test_intc_region () =
  let ic = Interrupt.create () in
  let m = M.create [ Interrupt.region ~name:"intc" ~base:0 ic ] in
  Interrupt.raise_line ic 3;
  check Alcotest.int "pending reg" 0b1000 (M.read m 0);
  check Alcotest.int "current reg" 3 (M.read m 3);
  M.write m 1 0b1000;
  check Alcotest.int "acked" 0 (M.read m 0)

let test_intc_errors () =
  let ic = Interrupt.create ~lines:2 () in
  (try
     Interrupt.raise_line ic 5;
     fail "line range"
   with Invalid_argument _ -> ());
  try
    ignore (Interrupt.create ~lines:99 ());
    fail "too many lines"
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Devices                                                             *)
(* ------------------------------------------------------------------ *)

let test_gpio () =
  let g = Device.Gpio.create () in
  let m = M.create [ Device.Gpio.region ~name:"gpio" ~base:0 g ] in
  M.write m 0 0xAB;
  check Alcotest.int "out latch" 0xAB (Device.Gpio.output g);
  Device.Gpio.set_input g 7;
  check Alcotest.int "in reg" 7 (M.read m 1);
  check Alcotest.int "write count" 1 (Device.Gpio.write_count g)

let test_timer () =
  let k = K.create () in
  let ic = Interrupt.create () in
  let t = Device.Timer.create ~irq:(ic, 2) k () in
  let m = M.create [ Device.Timer.region ~name:"timer" ~base:0 t ] in
  K.spawn k (fun () ->
      M.write m 1 25;
      (* compare *)
      M.write m 0 1;
      (* enable *)
      K.wait 10;
      check Alcotest.int "counting" 10 (M.read m 2);
      check Alcotest.int "not expired" 0 (M.read m 3);
      K.wait 20;
      check Alcotest.int "expired" 1 (M.read m 3);
      check Alcotest.int "irq raised" 0b100 (Interrupt.pending ic);
      M.write m 3 0;
      check Alcotest.int "status cleared" 0 (M.read m 3));
  ignore (K.run k);
  check Alcotest.int "expirations" 1 (Device.Timer.expired_count t)

let test_timer_restart_cancels () =
  let k = K.create () in
  let t = Device.Timer.create k () in
  let m = M.create [ Device.Timer.region ~name:"timer" ~base:0 t ] in
  K.spawn k (fun () ->
      M.write m 1 10;
      M.write m 0 1;
      K.wait 5;
      (* restart before expiry: the old deadline must not fire *)
      M.write m 0 1;
      K.wait 8;
      check Alcotest.int "not yet" 0 (M.read m 3);
      K.wait 5;
      check Alcotest.int "now" 1 (M.read m 3));
  ignore (K.run k);
  check Alcotest.int "single expiry" 1 (Device.Timer.expired_count t)

let test_stream_src () =
  let k = K.create () in
  let s =
    Device.Stream_src.create ~depth:2 ~period:10 ~count:5
      ~gen:(fun i -> i * i)
      k ()
  in
  let m = M.create [ Device.Stream_src.region ~name:"src" ~base:0 s ] in
  let got = ref [] in
  K.spawn ~name:"consumer" k (fun () ->
      for _ = 1 to 4 do
        (* poll availability *)
        while M.read m 0 = 0 do
          K.wait 2
        done;
        got := M.read m 1 :: !got
      done);
  ignore (K.run k);
  check (Alcotest.list Alcotest.int) "data" [ 0; 1; 4; 9 ] (List.rev !got);
  check Alcotest.int "produced" 5 (Device.Stream_src.produced s)

let test_stream_src_overrun () =
  let k = K.create () in
  let s =
    Device.Stream_src.create ~depth:2 ~period:5 ~count:6 ~gen:Fun.id k ()
  in
  ignore (K.run k);
  (* nobody consumed: fifo depth 2, 6 produced -> 4 overruns *)
  check Alcotest.int "overruns" 4 (Device.Stream_src.overruns s);
  check Alcotest.int "available" 2 (Device.Stream_src.available s)

let test_stream_sink () =
  let k = K.create () in
  let s = Device.Stream_sink.create ~period:20 k () in
  let m = M.create [ Device.Stream_sink.region ~name:"sink" ~base:0 s ] in
  K.spawn k (fun () ->
      check Alcotest.int "ready" 1 (M.read m 0);
      M.write m 1 11;
      check Alcotest.int "busy" 0 (M.read m 0);
      (* wait states reflect remaining busy time *)
      check Alcotest.int "ws" 20 (M.wait_states m 1);
      K.wait 20;
      check Alcotest.int "ready again" 1 (M.read m 0);
      M.write m 1 22);
  ignore (K.run ~expect_quiescent:true k);
  check (Alcotest.list Alcotest.int) "words" [ 11; 22 ]
    (Device.Stream_sink.accepted s)

(* ------------------------------------------------------------------ *)
(* DMA                                                                 *)
(* ------------------------------------------------------------------ *)

let test_dma_transfer () =
  let k = K.create () in
  let m = M.create [ M.ram ~name:"ram" ~base:0 ~size:128 ] in
  let bus = Bus.Tlm.create k m in
  let ic = Interrupt.create () in
  let dma = Dma.create ~irq:(ic, 0) k (Bus.tlm_iface bus) () in
  for i = 0 to 7 do
    M.write m (16 + i) (100 + i)
  done;
  K.spawn k (fun () ->
      check Alcotest.bool "started" true
        (Dma.start dma ~src:16 ~dst:64 ~len:8 = Dma.Started));
  ignore (K.run ~expect_quiescent:true k);
  for i = 0 to 7 do
    check Alcotest.int (Printf.sprintf "moved %d" i) (100 + i)
      (M.read m (64 + i))
  done;
  check Alcotest.int "words" 8 (Dma.words_moved dma);
  check Alcotest.int "transfers" 1 (Dma.transfers_completed dma);
  check Alcotest.bool "irq" true (Interrupt.pending ic land 1 = 1);
  check Alcotest.bool "idle" false (Dma.busy dma)

let test_dma_register_window () =
  let k = K.create () in
  let ram = M.ram ~name:"ram" ~base:0 ~size:64 in
  (* the DMA's own registers live on the same map it masters *)
  let map_ref = ref (M.create [ ram ]) in
  let iface =
    {
      Bus.bus_read = (fun a -> K.wait 1; M.read !map_ref a);
      bus_write = (fun a v -> K.wait 1; M.write !map_ref a v);
      bus_stats =
        (fun () -> { Bus.reads = 0; writes = 0; stalls = 0; busy_cycles = 0 });
    }
  in
  let dma = Dma.create k iface () in
  map_ref := M.create [ ram; Dma.region ~name:"dma" ~base:1000 dma ];
  let m = !map_ref in
  M.write m 5 42;
  K.spawn k (fun () ->
      M.write m 1000 5;
      (* src *)
      M.write m 1001 20;
      (* dst *)
      M.write m 1002 1;
      (* len *)
      M.write m 1003 1;
      (* go *)
      ignore (Codesign_sim.Signal.create k 0);
      K.wait 10;
      check Alcotest.int "done flag" 1 (M.read m 1004);
      M.write m 1004 0;
      check Alcotest.int "cleared" 0 (M.read m 1004));
  ignore (K.run ~expect_quiescent:true k);
  check Alcotest.int "moved" 42 (M.read m 20)

let test_dma_busy_queues () =
  let k = K.create () in
  let m = M.create [ M.ram ~name:"ram" ~base:0 ~size:128 ] in
  for i = 0 to 7 do
    M.write m i (i + 1)
  done;
  let bus = Bus.Tlm.create k m in
  let dma = Dma.create k (Bus.tlm_iface bus) () in
  let accepted = ref 0 in
  K.spawn k (fun () ->
      check Alcotest.bool "negative len rejected" true
        (match Dma.start dma ~src:0 ~dst:32 ~len:(-1) with
        | Dma.Rejected _ -> true
        | _ -> false);
      check Alcotest.bool "first starts" true
        (Dma.start dma ~src:0 ~dst:32 ~len:8 = Dma.Started);
      incr accepted;
      (* engine busy: further descriptors queue until the depth-4 job
         channel fills, then get a typed rejection — never an exception *)
      let rejected = ref false in
      for d = 0 to 5 do
        if not !rejected then
          match Dma.start dma ~src:0 ~dst:(40 + (8 * !accepted)) ~len:8 with
          | Dma.Queued -> incr accepted
          | Dma.Rejected _ -> rejected := true
          | Dma.Started ->
              fail (Printf.sprintf "descriptor %d started on busy engine" d)
      done;
      check Alcotest.bool "queue eventually fills" true !rejected;
      check Alcotest.bool "some descriptors queued" true (!accepted >= 4));
  ignore (K.run ~expect_quiescent:true k);
  (* every accepted descriptor — started or queued — completes *)
  check Alcotest.int "transfers" !accepted (Dma.transfers_completed dma);
  check Alcotest.int "words" (8 * !accepted) (Dma.words_moved dma);
  for d = 1 to !accepted - 1 do
    for i = 0 to 7 do
      check Alcotest.int
        (Printf.sprintf "queued copy %d word %d" d i)
        (i + 1)
        (M.read m (40 + (8 * d) + i))
    done
  done;
  check Alcotest.bool "idle after drain" false (Dma.busy dma)

(* ------------------------------------------------------------------ *)
(* Interface synthesis                                                 *)
(* ------------------------------------------------------------------ *)

let mmio_base = 0x10000

(* One CPU + TLM bus + sensor/sink devices; returns after running the
   given entry program (built by Interface_synth.program). *)
let run_embedded ?(irq_mode = false) ~entry () =
  let k = K.create () in
  let ic = Interrupt.create () in
  let src_irq = if irq_mode then Some (ic, 0) else None in
  let src =
    Device.Stream_src.create ?irq:src_irq ~depth:4 ~period:60 ~count:4
      ~gen:(fun i -> (i * 3) + 1)
      k ()
  in
  let sink = Device.Stream_sink.create ~period:25 k () in
  let map =
    M.create
      [
        Device.Stream_src.region ~name:"src" ~base:0x10000 src;
        Device.Stream_sink.region ~name:"sink" ~base:0x10010 sink;
        Interrupt.region ~name:"intc" ~base:0x1FF00 ic;
      ]
  in
  let bus = Bus.Tlm.create k map in
  let iface = Bus.tlm_iface bus in
  let img = Asm.assemble entry in
  let cpu_ref = ref None in
  let env =
    {
      Cpu.default_env with
      Cpu.mem_read =
        (fun a -> if a >= mmio_base then Some (iface.Bus.bus_read a) else None);
      mem_write =
        (fun a v ->
          if a >= mmio_base then begin
            iface.Bus.bus_write a v;
            true
          end
          else false);
    }
  in
  let cpu = Cpu.create ~env img.Asm.code in
  cpu_ref := Some cpu;
  Interrupt.on_change ic (fun level -> Cpu.set_irq cpu level);
  K.spawn ~name:"cpu" k (fun () ->
      let fuel = ref 200_000 in
      while Cpu.status cpu = Cpu.Running && !fuel > 0 do
        let cy = Cpu.step cpu in
        decr fuel;
        if cy > 0 then K.wait cy
      done);
  let stats = K.run ~expect_quiescent:true k in
  (cpu, sink, src, stats)

let echo_spec ~irq_mode =
  {
    Interface_synth.dname = "io";
    base = 0x10000;
    addr_bits = 20;
    ports =
      [
        {
          Interface_synth.pname = "sensor";
          direction = Interface_synth.In_port;
          data_offset = 1;
          status_offset = Some 0;
          mode =
            (if irq_mode then Interface_synth.Irq_driven 0
             else Interface_synth.Polled);
        };
        {
          Interface_synth.pname = "tx";
          direction = Interface_synth.Out_port;
          data_offset = 0x11;
          status_offset = Some 0x10;
          mode = Interface_synth.Polled;
        };
      ];
  }

let echo_entry =
  (* read 4 words from the sensor, forward each to the sink *)
  [
    Asm.Ins (I.Li (10, 4));
    Asm.Label "echo_loop";
    Asm.Ins (I.Jal (31, "io_sensor_read"));
    Asm.Ins (I.Jal (31, "io_tx_write"));
    Asm.Ins (I.Alui (I.Sub, 10, 10, 1));
    Asm.Ins (I.B (I.Ne, 10, 0, "echo_loop"));
    Asm.Ins I.Halt;
  ]

let test_interface_synth_polled_end_to_end () =
  let driver, glue = Interface_synth.synthesize (echo_spec ~irq_mode:false) in
  check Alcotest.int "two routines" 2 (List.length driver.Interface_synth.routines);
  check Alcotest.bool "no isr" true (driver.Interface_synth.isr = None);
  check Alcotest.bool "glue has gates" true
    (glue.Interface_synth.gate_count > 10);
  let entry = Interface_synth.program ~entry:echo_entry driver in
  let cpu, sink, _src, _ = run_embedded ~entry () in
  check Alcotest.bool "halted" true (Cpu.status cpu = Cpu.Halted);
  check (Alcotest.list Alcotest.int) "echoed" [ 1; 4; 7; 10 ]
    (Device.Stream_sink.accepted sink)

let test_interface_synth_irq_end_to_end () =
  let driver, glue = Interface_synth.synthesize (echo_spec ~irq_mode:true) in
  check Alcotest.bool "has isr" true (driver.Interface_synth.isr <> None);
  check Alcotest.int "sync flops" 2 glue.Interface_synth.sync_flops;
  let entry = Interface_synth.program ~entry:echo_entry driver in
  let cpu, sink, _src, _ = run_embedded ~irq_mode:true ~entry () in
  check Alcotest.bool "halted" true (Cpu.status cpu = Cpu.Halted);
  check (Alcotest.list Alcotest.int) "echoed via irq" [ 1; 4; 7; 10 ]
    (Device.Stream_sink.accepted sink)

let test_interface_synth_validation () =
  let bad_port =
    {
      Interface_synth.pname = "p";
      direction = Interface_synth.In_port;
      data_offset = 0;
      status_offset = None;
      mode = Interface_synth.Polled;
    }
  in
  (try
     ignore
       (Interface_synth.synthesize
          { Interface_synth.dname = "d"; base = 0; addr_bits = 8;
            ports = [ bad_port ] });
     fail "polled without status"
   with Invalid_argument _ -> ());
  try
    ignore
      (Interface_synth.synthesize
         {
           Interface_synth.dname = "d";
           base = 0;
           addr_bits = 8;
           ports =
             [
               { bad_port with status_offset = Some 1;
                 mode = Interface_synth.Irq_driven 99 };
             ];
         });
    fail "irq line range"
  with Invalid_argument _ -> ()

let test_interface_synth_glue_decodes () =
  (* the generated decoder actually selects the right addresses *)
  let _, glue = Interface_synth.synthesize (echo_spec ~irq_mode:false) in
  let sim = Codesign_rtl.Logic_sim.create glue.Interface_synth.netlist in
  let drive addr =
    for i = 0 to 19 do
      Codesign_rtl.Logic_sim.set_input sim (Printf.sprintf "a%d" i)
        ((addr lsr i) land 1)
    done;
    Codesign_rtl.Logic_sim.eval sim
  in
  drive 0x10001;
  check Alcotest.int "dev_sel hit" 1
    (Codesign_rtl.Logic_sim.output sim "dev_sel");
  check Alcotest.int "sensor sel" 1
    (Codesign_rtl.Logic_sim.output sim "sel_sensor");
  drive 0x20001;
  check Alcotest.int "dev_sel miss" 0
    (Codesign_rtl.Logic_sim.output sim "dev_sel")

let test_driver_code_size () =
  let driver, _ = Interface_synth.synthesize (echo_spec ~irq_mode:false) in
  let driver_irq, _ = Interface_synth.synthesize (echo_spec ~irq_mode:true) in
  check Alcotest.bool "irq driver bigger (isr)" true
    (driver_irq.Interface_synth.code_bytes
    > driver.Interface_synth.code_bytes)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "codesign_bus"
    [
      ( "memory_map",
        [
          Alcotest.test_case "decode/read/write" `Quick test_map_decode;
          Alcotest.test_case "overlap rejected" `Quick test_map_overlap;
          Alcotest.test_case "device handlers" `Quick test_map_device;
        ] );
      ( "bus",
        [
          Alcotest.test_case "tlm read/write" `Quick test_tlm_read_write;
          Alcotest.test_case "tlm arbitration" `Quick test_tlm_arbitration;
          Alcotest.test_case "pin functional" `Quick
            test_pin_matches_tlm_functionally;
          Alcotest.test_case "pin wait states" `Quick
            test_pin_sees_wait_states_tlm_does_not;
          Alcotest.test_case "pin event cost" `Quick
            test_pin_generates_more_events;
          Alcotest.test_case "zero iface" `Quick test_zero_iface;
        ] );
      ( "interrupt",
        [
          Alcotest.test_case "basic" `Quick test_intc_basic;
          Alcotest.test_case "mask" `Quick test_intc_mask;
          Alcotest.test_case "on_change" `Quick test_intc_on_change;
          Alcotest.test_case "register window" `Quick test_intc_region;
          Alcotest.test_case "errors" `Quick test_intc_errors;
        ] );
      ( "devices",
        [
          Alcotest.test_case "gpio" `Quick test_gpio;
          Alcotest.test_case "timer" `Quick test_timer;
          Alcotest.test_case "timer restart" `Quick
            test_timer_restart_cancels;
          Alcotest.test_case "stream src" `Quick test_stream_src;
          Alcotest.test_case "stream src overrun" `Quick
            test_stream_src_overrun;
          Alcotest.test_case "stream sink" `Quick test_stream_sink;
        ] );
      ( "dma",
        [
          Alcotest.test_case "transfer" `Quick test_dma_transfer;
          Alcotest.test_case "register window" `Quick
            test_dma_register_window;
          Alcotest.test_case "busy queues then rejects" `Quick
            test_dma_busy_queues;
        ] );
      ( "interface_synth",
        [
          Alcotest.test_case "polled end-to-end" `Quick
            test_interface_synth_polled_end_to_end;
          Alcotest.test_case "irq end-to-end" `Quick
            test_interface_synth_irq_end_to_end;
          Alcotest.test_case "validation" `Quick
            test_interface_synth_validation;
          Alcotest.test_case "glue decodes" `Quick
            test_interface_synth_glue_decodes;
          Alcotest.test_case "driver code size" `Quick test_driver_code_size;
        ] );
    ]
