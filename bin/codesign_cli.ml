(* codesign — command-line front end to the co-design framework.

     dune exec bin/codesign_cli.exe -- <command> ...

   Commands:
     experiments [-q] [--jobs N] [--json] [NAME...]
                                    print experiment tables (default all)
     partition   [options]          partition a generated task graph
     cosynth     [options]          heterogeneous multiprocessor synthesis
     asip        KERNEL [options]   instruction-set extension flow
     cosim       [--level L] [--json]  co-simulate the echo system
     fuzz        [--seed N] [--count N] [--fault] [--jobs N] [--json]
                                    cross-level differential fuzz
     fault       [--seed N] [--ops N] [--quick] [--jobs N] [--json]
                 [--chaos trap|hang] [--cell-fuel N] [--out FILE]
                                    deterministic fault-injection campaign
     kernels                        list the benchmark kernels
     disasm      KERNEL             show a kernel's compiled assembly

   fuzz, fault and experiments take --jobs N: the work shards over the
   shared Domain_pool and merges by task index, so reports and tables
   are byte-identical at every N.  They also take --max-retries N and
   --deadline-ms MS: failing units of work are retried per policy and
   then recorded as degraded while the run completes (lib/resil).
   Unknown subcommands or flags exit 2 with usage on stderr.             *)

open Cmdliner
open Codesign
module T = Codesign_ir.Task_graph
module Tgff = Codesign_workloads.Tgff
module Kernels = Codesign_workloads.Kernels
module Registry = Codesign_experiments.Registry
module Obs = Codesign_obs
module Resil = Codesign_resil

(* cmdliner 1.3 reports unknown subcommands / flags and term-level
   failures (e.g. fuzz disagreements) alike as [Error `Term]; what
   separates them is that a parse error never runs a command body.
   Every body flips this on entry, and the exit mapping at the bottom
   turns body-less [`Term] errors into the conventional exit 2. *)
let command_ran = ref false

let started f =
  Term.(
    const (fun x ->
        command_ran := true;
        x)
    $ f)

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ] ~doc:"Machine-readable JSON output instead of text.")

(* ------------------------------------------------------------------ *)
(* shared arguments                                                    *)
(* ------------------------------------------------------------------ *)

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Workload seed.")

(* Shared by fuzz / fault / experiments: every parallel path merges
   results by task index on the Domain_pool, so output is byte-identical
   at any job count — N only changes wall time. *)
let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Worker-domain count (default 1).  Reports and tables are \
           byte-identical for every $(docv): parallel results merge \
           deterministically by task index.")

(* Shared by fuzz / fault / experiments: instead of aborting, a failing
   unit of work (fuzz case, sweep cell, experiment) is retried in place
   and then recorded as degraded while the run completes. *)
let max_retries_arg =
  Arg.(
    value & opt (some int) None
    & info [ "max-retries" ] ~docv:"N"
        ~doc:
          "Retry a failing unit of work (fuzz case, sweep cell, \
           experiment) up to $(docv) extra times before recording it as \
           degraded.  Defaults: fault 2, fuzz 0, experiments 0.")

let deadline_arg =
  Arg.(
    value & opt (some int) None
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:
          "Wall-clock deadline for the whole run; work not started when \
           it passes is recorded as degraded (\"deadline exceeded\") \
           instead of run.  Default: none.")

(* --max-retries N as a restart policy: N immediate retries.  [None]
   keeps each subsystem's own default. *)
let policy_of_retries =
  Option.map (fun n ->
      Resil.Policy.create ~max_retries:n ~backoff:Resil.Policy.No_backoff ())

let tasks_arg =
  Arg.(
    value & opt int 12
    & info [ "tasks" ] ~docv:"N" ~doc:"Number of tasks in the workload.")

let kernel_arg =
  let kconv =
    Arg.enum (List.map (fun ((n, _, _) as k) -> (n, k)) Kernels.all)
  in
  Arg.(
    required
    & pos 0 (some kconv) None
    & info [] ~docv:"KERNEL" ~doc:"Benchmark kernel name.")

(* ------------------------------------------------------------------ *)
(* experiments                                                         *)
(* ------------------------------------------------------------------ *)

(* An experiment past the wall deadline, or still raising after its
   retries, degrades (skipped / recorded) instead of aborting the run. *)
let run_experiment_guarded ~budget ~policy ~quick ~jobs (e : Registry.entry) =
  if Resil.Budget.past_deadline budget then Error "deadline exceeded"
  else
    match
      Resil.Policy.retry policy (fun ~attempt:_ ->
          match e.Registry.run ~quick ~jobs () with
          | table -> Ok table
          | exception exn -> Error (Printexc.to_string exn))
    with
    | Ok table -> Ok table
    | Error { Resil.Policy.attempts; last_error } ->
        Error (Printf.sprintf "%s (after %d attempts)" last_error attempts)

(* One experiment run with the same measurement wrapper the bench
   harness uses, so CLI JSON records match BENCH_results.json entries.
   A degraded experiment's record carries a ["degraded"] member instead
   of the table. *)
let measure_experiment ~budget ~policy ~quick ~jobs (e : Registry.entry) =
  let module K = Codesign_sim.Kernel in
  let before = K.domain_totals () in
  let t0 = Obs.Clock.now_ns () in
  let outcome = run_experiment_guarded ~budget ~policy ~quick ~jobs e in
  let wall_s = Obs.Clock.elapsed_s ~since:t0 in
  let after = K.domain_totals () in
  let base =
    [
      ("name", Obs.Json.Str e.Registry.exp_id);
      ("wall_s", Obs.Json.Float wall_s);
      ("events", Obs.Json.Int (after.K.d_events - before.K.d_events));
      ( "activations",
        Obs.Json.Int (after.K.d_activations - before.K.d_activations) );
      ("scheduled", Obs.Json.Int (after.K.d_scheduled - before.K.d_scheduled));
      ("kernels", Obs.Json.Int (after.K.d_kernels - before.K.d_kernels));
    ]
  in
  ( outcome,
    Obs.Json.Obj
      (base
      @
      match outcome with
      | Ok table ->
          [
            ("table_checksum", Obs.Json.Str (Obs.Checksum.of_string table));
            ("table", Obs.Json.Str table);
          ]
      | Error msg -> [ ("degraded", Obs.Json.Str msg) ]) )

let experiments_cmd =
  let quick =
    Arg.(value & flag & info [ "q"; "quick" ] ~doc:"Small problem sizes.")
  in
  let names =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"NAME" ~doc:"Experiment names (exp1..exp10, expA).")
  in
  let run quick jobs json max_retries deadline_ms names =
    let selected =
      if names = [] then Registry.all
      else
        List.filter
          (fun (e : Registry.entry) ->
            List.mem e.Registry.cli_name names
            || List.mem e.Registry.exp_id names)
          Registry.all
    in
    let budget = Resil.Budget.create ?deadline_ms () in
    let policy =
      Option.value (policy_of_retries max_retries)
        ~default:Resil.Policy.no_retry
    in
    if selected = [] then
      Error
        (`Msg
          "no matching experiments (try exp1..exp10, exp3m, expA, expF, expP)")
    else if json then begin
      let records =
        List.map
          (fun e -> snd (measure_experiment ~budget ~policy ~quick ~jobs e))
          selected
      in
      print_endline (Obs.Json.to_string ~pretty:true (Obs.Json.List records));
      Ok ()
    end
    else begin
      List.iter
        (fun (e : Registry.entry) ->
          match run_experiment_guarded ~budget ~policy ~quick ~jobs e with
          | Ok table -> print_endline table
          | Error msg ->
              Printf.eprintf "codesign: experiment %s degraded: %s\n%!"
                e.Registry.exp_id msg)
        selected;
      Ok ()
    end
  in
  Cmd.v
    (Cmd.info "experiments" ~doc:"Print reproduction experiment tables.")
    Term.(
      term_result
        (started
           (const run $ quick $ jobs_arg $ json_arg $ max_retries_arg
          $ deadline_arg $ names)))

(* ------------------------------------------------------------------ *)
(* partition                                                           *)
(* ------------------------------------------------------------------ *)

let partition_cmd =
  let budget =
    Arg.(
      value & opt (some int) None
      & info [ "budget" ] ~docv:"AREA" ~doc:"Hardware area budget.")
  in
  let algo =
    Arg.(
      value
      & opt (enum
               [ ("greedy", `Greedy); ("kl", `Kl); ("sa", `Sa);
                 ("gclp", `Gclp); ("exhaustive", `Exhaustive) ])
          `Kl
      & info [ "algo" ] ~docv:"ALGO"
          ~doc:"Algorithm: greedy | kl | sa | gclp | exhaustive.")
  in
  let run seed tasks budget algo =
    let g =
      Tgff.generate { Tgff.default_spec with Tgff.seed; n_tasks = tasks }
    in
    Format.printf "%a@.@." T.pp g;
    let r =
      match algo with
      | `Greedy -> Partition.greedy ?max_area:budget g
      | `Kl -> Partition.kl ?max_area:budget g
      | `Sa -> Partition.simulated_annealing ?max_area:budget g
      | `Gclp -> Partition.gclp ?max_area:budget g
      | `Exhaustive -> Partition.exhaustive ?max_area:budget g
    in
    let e = r.Partition.eval in
    Printf.printf
      "%s: latency %d (all-SW %d, speedup %.2fx), hw area %d, %d/%d tasks \
       in hw, deadline %s, %d cost evaluations\n"
      r.Partition.algorithm e.Cost.latency e.Cost.all_sw_latency
      e.Cost.speedup e.Cost.hw_area e.Cost.n_hw (T.n_tasks g)
      (if e.Cost.meets_deadline then "met" else "MISSED")
      r.Partition.evaluations;
    Printf.printf "hardware tasks: %s\n"
      (String.concat ", "
         (List.filteri (fun i _ -> r.Partition.partition.(i))
            (Array.to_list g.T.tasks)
         |> List.map (fun (t : T.task) -> t.T.name)))
  in
  Cmd.v
    (Cmd.info "partition" ~doc:"Partition a generated task graph.")
    Term.(started (const run $ seed_arg $ tasks_arg $ budget $ algo))

(* ------------------------------------------------------------------ *)
(* cosynth                                                             *)
(* ------------------------------------------------------------------ *)

let cosynth_cmd =
  let algo =
    Arg.(
      value
      & opt (enum
               [ ("sos", `Sos); ("binpack", `Binpack);
                 ("sensitivity", `Sensitivity) ])
          `Sos
      & info [ "algo" ] ~docv:"ALGO"
          ~doc:"Algorithm: sos | binpack | sensitivity.")
  in
  let run seed tasks algo =
    let g =
      Tgff.generate
        { Tgff.default_spec with Tgff.seed; n_tasks = tasks;
          deadline_factor = 1.1 }
    in
    let exec =
      Array.map
        (fun (t : T.task) ->
          [| max 1 (t.T.sw_cycles / 4); max 1 (t.T.sw_cycles / 2);
             t.T.sw_cycles |])
        g.T.tasks
    in
    let pb =
      Cosynth.problem g
        [ { Cosynth.pt_name = "fast"; price = 100 };
          { Cosynth.pt_name = "mid"; price = 40 };
          { Cosynth.pt_name = "slow"; price = 15 } ]
        ~exec
    in
    let s =
      match algo with
      | `Sos -> Cosynth.sos pb
      | `Binpack -> Cosynth.binpack pb
      | `Sensitivity -> Cosynth.sensitivity pb
    in
    Format.printf "%a@." (fun f -> Cosynth.pp_solution f pb) s
  in
  Cmd.v
    (Cmd.info "cosynth" ~doc:"Synthesise a heterogeneous multiprocessor.")
    Term.(started (const run $ seed_arg $ tasks_arg $ algo))

(* ------------------------------------------------------------------ *)
(* asip                                                                *)
(* ------------------------------------------------------------------ *)

let asip_cmd =
  let budget =
    Arg.(
      value & opt int 800
      & info [ "budget" ] ~docv:"AREA" ~doc:"Extension area budget.")
  in
  let run (name, proc, binds) budget =
    let r = Asip.design ~budget proc binds in
    Printf.printf "kernel %s, budget %d:\n" name budget;
    Printf.printf "  occurrences: %s\n"
      (String.concat ", "
         (List.map
            (fun (p, n) -> Printf.sprintf "%s x%d" p n)
            r.Asip.occurrence_counts));
    Printf.printf "  selected:    %s (area %d)\n"
      (match r.Asip.selected with
      | [] -> "-"
      | l -> String.concat "+" (List.map (fun p -> p.Asip.pname) l))
      r.Asip.fu_area;
    Printf.printf "  cycles:      %d -> %d  (%.2fx, %s)\n" r.Asip.base_cycles
      r.Asip.asip_cycles r.Asip.speedup
      (if r.Asip.verified then "verified" else "VERIFY FAILED")
  in
  Cmd.v
    (Cmd.info "asip" ~doc:"Run the ASIP extension flow on a kernel.")
    Term.(started (const run $ kernel_arg $ budget))

(* ------------------------------------------------------------------ *)
(* cosim                                                               *)
(* ------------------------------------------------------------------ *)

let cosim_cmd =
  let level =
    Arg.(
      value
      & opt (enum
               [ ("pin", Cosim.Pin); ("tlm", Cosim.Transaction);
                 ("driver", Cosim.Driver); ("message", Cosim.Message) ])
          Cosim.Transaction
      & info [ "level" ] ~docv:"LEVEL"
          ~doc:"Abstraction: pin | tlm | driver | message.")
  in
  let levels =
    Arg.(
      value
      & opt (some string) None
      & info [ "levels" ] ~docv:"SRC:CPU:SINK"
          ~doc:
            "Mixed per-component assignment: abstraction of the \
             source-side interface, the software model, and the \
             sink-side interface, each pin | tlm | driver | message \
             (e.g. pin:tlm:message).  Overrides $(b,--level).")
  in
  let items =
    Arg.(value & opt int 16 & info [ "items" ] ~docv:"N" ~doc:"Stream length.")
  in
  let quantum =
    Arg.(
      value
      & opt int 1
      & info [ "quantum" ] ~docv:"N"
          ~doc:
            "Temporal-decoupling quantum: let the software component \
             run up to $(docv) cycles ahead of the kernel between \
             synchronisation points (1 = classic per-step coupling; \
             larger quanta keep the checksum and trade exact \
             event/activation counts for speed).")
  in
  let partitions =
    Arg.(
      value
      & opt int 1
      & info [ "partitions" ] ~docv:"N"
          ~doc:
            "Run the system on a conservatively synchronised \
             partitioned kernel, one domain per partition (1-3): 2 \
             cuts the sink onto its own partition, 3 also cuts the \
             source.  Cut interfaces must be message-level and need \
             $(b,--link-latency) >= 1 for lookahead.  Results are \
             byte-identical to the serial run at the same link \
             latency.")
  in
  let link_latency =
    Arg.(
      value
      & opt int 0
      & info [ "link-latency" ] ~docv:"CYCLES"
          ~doc:
            "Delivery latency of the message-level channels (applied \
             in every mode, so serial and partitioned runs stay \
             comparable); doubles as the cross-partition lookahead.")
  in
  let run level levels items quantum partitions link_latency json =
    let assignment =
      match levels with
      | None -> Ok (Cosim.pure level)
      | Some s -> Cosim.parse_assignment s
    in
    match assignment with
    | Error e -> prerr_endline ("cosim: " ^ e); exit 2
    | Ok levels ->
    if quantum < 1 then begin
      prerr_endline "cosim: --quantum must be >= 1";
      exit 2
    end;
    if partitions < 1 || partitions > 3 then begin
      prerr_endline "cosim: --partitions must be in 1..3";
      exit 2
    end;
    if link_latency < 0 then begin
      prerr_endline "cosim: --link-latency must be >= 0";
      exit 2
    end;
    if partitions > 1 && link_latency < 1 then begin
      prerr_endline
        "cosim: --partitions > 1 needs --link-latency >= 1 (a cut \
         channel's latency is the lookahead that lets the partitions \
         synchronise)";
      exit 2
    end;
    let m, wall_s =
      (* partition validation lives in the library (which interfaces are
         cut, lookahead at the cuts); surface it as a CLI error, not an
         uncaught exception *)
      try
        Obs.Clock.time (fun () ->
            Cosim.run_echo_assignment ~levels ~items ~quantum ~partitions
              ~link_latency ())
      with Invalid_argument msg ->
        prerr_endline ("cosim: " ^ msg);
        exit 2
    in
    let outcome_str =
      match m.Cosim.outcome with
      | Cosim.Completed -> "completed"
      | Cosim.Not_halted reason -> "not-halted: " ^ reason
      | Cosim.Exhausted reason -> "exhausted: " ^ reason
    in
    let shown =
      if Cosim.is_pure m.Cosim.assignment then
        Cosim.level_name m.Cosim.level
      else Cosim.assignment_name m.Cosim.assignment
    in
    if json then
      print_endline
        (Obs.Json.to_string ~pretty:true
           (Obs.Json.Obj
              [
                ("level", Obs.Json.Str shown);
                ("levels",
                 Obs.Json.Str (Cosim.assignment_name m.Cosim.assignment));
                ("outcome", Obs.Json.Str outcome_str);
                ("items", Obs.Json.Int items);
                ("quantum", Obs.Json.Int quantum);
                ("partitions", Obs.Json.Int partitions);
                ("link_latency", Obs.Json.Int link_latency);
                ("wall_s", Obs.Json.Float wall_s);
                ("checksum", Obs.Json.Int m.Cosim.checksum);
                ("sim_cycles", Obs.Json.Int m.Cosim.sim_cycles);
                ("events", Obs.Json.Int m.Cosim.events);
                ("activations", Obs.Json.Int m.Cosim.activations);
                ("bus_ops", Obs.Json.Int m.Cosim.bus_ops);
              ]))
    else
      Printf.printf
        "%s (%s): checksum %d, %d simulated cycles, %d kernel events, %d bus \
         ops\n"
        shown outcome_str m.Cosim.checksum m.Cosim.sim_cycles m.Cosim.events
        m.Cosim.bus_ops
  in
  Cmd.v
    (Cmd.info "cosim"
       ~doc:
         "Co-simulate the echo system at a given level, or a mixed \
          per-component level assignment.")
    Term.(
      started
        (const run $ level $ levels $ items $ quantum $ partitions
       $ link_latency $ json_arg))

(* ------------------------------------------------------------------ *)
(* fuzz                                                                *)
(* ------------------------------------------------------------------ *)

let fuzz_cmd =
  let count =
    Arg.(
      value & opt int 200
      & info [ "count" ] ~docv:"N" ~doc:"Number of fuzz cases to run.")
  in
  let seed =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"N"
          ~doc:"Base seed; case $(i) runs from seed $(docv)+$(i).")
  in
  let fault =
    Arg.(
      value & flag
      & info [ "fault" ]
          ~doc:
            "Also fuzz the fault-injection layer (campaign determinism and \
             faulty-transport delivery oracles).")
  in
  let run seed count fault jobs max_retries deadline_ms json =
    let r =
      Codesign_fuzz.Fuzz.run ~seed ~count ~fault ~jobs
        ?policy:(policy_of_retries max_retries) ?deadline_ms ()
    in
    let module R = Obs.Fuzz_report in
    if json then
      print_endline (Obs.Json.to_string ~pretty:true (R.to_json r))
    else begin
      Printf.printf
        "fuzz: %d cases from seed %d (%d behavior, %d ladder, %d taskgraph, \
         %d fault; %d FSMD blocks) in %.2fs\n"
        r.R.count r.R.seed r.R.behavior_cases r.R.ladder_cases
        r.R.taskgraph_cases r.R.fault_cases r.R.rtl_blocks r.R.wall_s;
      List.iter
        (fun (f : R.failure) ->
          Printf.printf "FAIL [%s] case seed %d: %s\n" f.R.f_category
            f.R.f_seed f.R.f_detail;
          Option.iter
            (fun p -> Printf.printf "  shrunk counterexample:\n%s\n" p)
            f.R.f_program)
        r.R.failures;
      List.iter
        (fun ((case_seed, d) : int * Obs.Degraded.t) ->
          Printf.printf "DEGRADED case seed %d: %s (after %d attempts)\n"
            case_seed d.Obs.Degraded.error d.Obs.Degraded.attempts)
        r.R.degraded;
      if r.R.failures = [] && r.R.degraded = [] then
        print_endline "all levels agree"
    end;
    if r.R.failures = [] then Ok ()
    else
      Error
        (`Msg
           (Printf.sprintf "%d of %d fuzz cases found disagreements"
              (List.length r.R.failures) r.R.count))
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differentially fuzz the abstraction levels against each other.")
    Term.(
      term_result
        (started
           (const run $ seed $ count $ fault $ jobs_arg $ max_retries_arg
          $ deadline_arg $ json_arg)))

(* ------------------------------------------------------------------ *)
(* fault                                                               *)
(* ------------------------------------------------------------------ *)

let fault_cmd =
  let module Campaign = Codesign_fault.Campaign in
  let module FR = Obs.Fault_report in
  let seed =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"N"
          ~doc:
            "Campaign seed.  The same seed always produces byte-identical \
             JSON.")
  in
  let ops =
    Arg.(
      value & opt (some int) None
      & info [ "ops" ] ~docv:"N"
          ~doc:"Transfer operations per sweep cell (default 240; 96 quick).")
  in
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ] ~doc:"Smaller campaign for CI-speed runs.")
  in
  let engine =
    let engine_conv =
      Arg.enum [ ("fork", Campaign.Fork); ("rerun", Campaign.Rerun) ]
    in
    Arg.(
      value & opt engine_conv Campaign.Fork
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:
            "Sweep engine: $(b,fork) (default) checkpoints each \
             mechanism's world after its fault-free warm-up and forks \
             every rate cell off the checkpoint; $(b,rerun) rebuilds the \
             world from scratch per cell.  Both produce byte-identical \
             reports — rerun is the reference fork is checked against.")
  in
  let warmup =
    Arg.(
      value & opt (some int) None
      & info [ "warmup" ] ~docv:"N"
          ~doc:
            "Fault-free warm-up transfers before each cell's injection \
             window (default ops/2).")
  in
  let out =
    Arg.(
      value & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:
            "Also write the JSON report to $(docv) and validate that it \
             round-trips through the reader.")
  in
  let chaos =
    let chaos_conv =
      Arg.enum
        [ ("trap", Campaign.Chaos_trap); ("hang", Campaign.Chaos_hang) ]
    in
    Arg.(
      value & opt (some chaos_conv) None
      & info [ "chaos" ] ~docv:"KIND"
          ~doc:
            "Append a deliberately sabotaged sweep task ($(b,trap) raises \
             mid-window, $(b,hang) spins until its fuel runs out); its \
             cells come back degraded while every other cell is \
             byte-identical to a run without $(b,--chaos).")
  in
  let cell_fuel =
    Arg.(
      value & opt (some int) None
      & info [ "cell-fuel" ] ~docv:"UNITS"
          ~doc:
            "Simulated-time budget per sweep-cell attempt (default 200M \
             units, the historic run bound).")
  in
  let run seed ops quick engine warmup jobs max_retries deadline_ms chaos
      cell_fuel json out =
    let ops =
      match ops with
      | Some n -> n
      | None -> if quick then Campaign.quick_ops else Campaign.default_ops
    in
    let r =
      Campaign.run ~seed ~ops ?warmup ~engine ~jobs
        ?policy:(policy_of_retries max_retries) ?cell_fuel ?deadline_ms
        ?chaos ()
    in
    (match out with
    | None -> ()
    | Some file ->
        FR.write ~path:file r;
        (match FR.read ~path:file with
        | Error e ->
            failwith
              (Printf.sprintf "fault report in %s failed to parse: %s" file e)
        | Ok back ->
            (* compare serialized forms: floats are printed at %.12g, so
               the parsed tree can differ in bits the printer drops while
               the canonical text stays identical *)
            if
              Obs.Json.to_string (FR.to_json back)
              <> Obs.Json.to_string (FR.to_json r)
            then failwith ("fault report did not round-trip through " ^ file)));
    if json then
      print_endline (Obs.Json.to_string ~pretty:true (FR.to_json r))
    else print_string (Codesign_experiments.Exp_fault.render r);
    Ok ()
  in
  Cmd.v
    (Cmd.info "fault"
       ~doc:
         "Run the deterministic fault-injection campaign across the \
          interface ladder.")
    Term.(
      term_result
        (started
           (const run $ seed $ ops $ quick $ engine $ warmup $ jobs_arg
          $ max_retries_arg $ deadline_arg $ chaos $ cell_fuel $ json_arg
          $ out)))

(* ------------------------------------------------------------------ *)
(* kernels / disasm                                                    *)
(* ------------------------------------------------------------------ *)

let kernels_cmd =
  let run () =
    List.iter
      (fun (name, proc, _) ->
        let est = Codesign_hls.Hls.estimate proc in
        Printf.printf "%-18s %3d stmts, hw est: %5d cycles / %5d area\n" name
          (Codesign_ir.Behavior.static_stmts proc)
          est.Codesign_hls.Hls.cycles est.Codesign_hls.Hls.area)
      Kernels.all
  in
  Cmd.v
    (Cmd.info "kernels" ~doc:"List the benchmark kernels.")
    Term.(started (const run $ const ()))

let disasm_cmd =
  let run (name, proc, _) =
    let items, lay = Codesign_isa.Codegen.compile proc in
    let img = Codesign_isa.Asm.assemble items in
    Printf.printf "; %s — %d instructions, %d encoded bytes, data segment \
                   %d words at %d\n%s"
      name
      (Array.length img.Codesign_isa.Asm.code)
      (Codesign_isa.Encoding.program_bytes img.Codesign_isa.Asm.code)
      lay.Codesign_isa.Codegen.data_words lay.Codesign_isa.Codegen.base
      (Codesign_isa.Asm.print items)
  in
  Cmd.v
    (Cmd.info "disasm" ~doc:"Show a kernel's compiled assembly.")
    Term.(started (const run $ kernel_arg))

(* ------------------------------------------------------------------ *)

let () =
  let info =
    Cmd.info "codesign" ~version:"1.0.0"
      ~doc:
        "Mixed hardware/software system design — reproduction of Adams & \
         Thomas, DAC 1996."
  in
  (* Unknown subcommands / flags are parse errors: cmdliner has already
     printed the message and usage on stderr, we exit the conventional
     2.  Term-level failures (e.g. fuzz disagreements) exit 1. *)
  let code =
    match
      Cmd.eval_value
        (Cmd.group info
           [
             experiments_cmd; partition_cmd; cosynth_cmd; asip_cmd; cosim_cmd;
             fuzz_cmd; fault_cmd; kernels_cmd; disasm_cmd;
           ])
    with
    | Ok (`Ok ()) | Ok `Help | Ok `Version -> 0
    | Error `Parse -> 2
    | Error `Term -> if !command_ran then 1 else 2
    | Error `Exn -> Cmd.Exit.internal_error
  in
  exit code
